"""Automated ExD customisation (Sec. VII).

Given a platform cost model, a tolerance ε and candidate dictionary
sizes, the tuner

1. estimates α(L) on a random data subset (cheap, expectation-preserving
   for union-of-subspaces data);
2. predicts ``nnz(C) ≈ α(L)·N`` for the full matrix;
3. evaluates Eq. 2/3/4 for each candidate and returns the arg-min.

``find_min_feasible_size`` locates L_min — the smallest dictionary for
which OMP can meet ε on every column — which both bounds the search
space and *is* the (platform-oblivious) choice of the RankMap baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.alpha import measure_alpha
from repro.core.cost_model import CostModel
from repro.errors import TuningError
from repro.linalg.kernels import use_backend
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_fraction, check_positive_int


@dataclass
class TuningResult:
    """Outcome of a tuner run.

    Attributes
    ----------
    best_size:
        The cost-minimising dictionary size L*.
    objective:
        Which cost was minimised ("time", "energy", "memory").
    table:
        Per-candidate rows ``(L, alpha, predicted_nnz, cost)`` —
        infeasible candidates are excluded.
    subset_columns:
        How many data columns the candidate evaluation actually read:
        the largest α-estimation subset over all *evaluated* candidates
        (feasible or not).  The serial and distributed tuners report the
        identical value for the same inputs.
    """

    best_size: int
    objective: str
    table: list = field(default_factory=list)
    subset_columns: int = 0

    def cost_of(self, size: int) -> float:
        """Predicted cost of a candidate size from the tuning table."""
        for l, _alpha, _nnz, cost in self.table:
            if l == size:
                return cost
        raise KeyError(f"size {size} not in tuning table")


def default_candidates(m: int, n: int, l_min: int) -> list[int]:
    """Geometric candidate grid from L_min up to min(4·M, N)."""
    upper = min(max(4 * m, 2 * l_min), n)
    sizes = []
    l = max(l_min, 1)
    while l < upper:
        sizes.append(l)
        l = max(l + 1, int(round(l * 1.6)))
    sizes.append(upper)
    return sorted(set(sizes))


def find_min_feasible_size(a, eps: float, *, seed=None,
                           subset_fraction: float = 0.25,
                           trials: int = 1,
                           max_size: int | None = None,
                           workers: int | None = None,
                           backend=None) -> int:
    """Smallest L whose random dictionary meets ε on every column.

    Uses doubling + bisection on a random column subset.  Feasibility is
    monotone in L in expectation (more atoms only help), which the
    bisection relies on; ``trials > 1`` guards against unlucky draws.
    The probes are sequential (each feeds the next bracket) but each
    probe's trials/encode parallelise with ``workers``.

    ``a`` may be a :class:`~repro.store.ColumnStore`; the probes then
    read only their subset columns from disk.  ``backend`` selects the
    OMP kernel (see :mod:`repro.linalg.kernels`) for every probe encode.
    """
    from repro.store.column_store import check_matrix_or_store, take_columns

    a = check_matrix_or_store(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    n = a.shape[1]
    limit = min(max_size or n, n)
    rng = as_generator(seed)
    n_sub = max(min(n, int(round(subset_fraction * n))), 2)
    order = rng.permutation(n)
    sub = take_columns(a, order[:n_sub])

    def feasible(l: int) -> bool:
        # Grow the subset when the probe approaches its column count —
        # a dictionary cannot sample more columns than the subset holds,
        # and a near-exhaustive sample is not representative anyway.
        nonlocal sub
        if 2 * l > sub.shape[1]:
            bigger = min(max(2 * l, sub.shape[1]), n)
            sub = take_columns(a, order[:bigger])
        if l > sub.shape[1]:
            return False
        obs.inc("tuner.feasibility_probes")
        est = measure_alpha(sub, l, eps, trials=trials,
                            seed=derive_seed(seed, 1, l), workers=workers)
        return est.feasible

    with obs.span("tuner.find_min_feasible"), use_backend(backend):
        lo, hi = 1, None
        l = max(2, min(8, limit))
        while l <= limit:
            if feasible(l):
                hi = l
                break
            lo = l
            l *= 2
        if hi is None:
            if feasible(limit):
                hi = limit
            else:
                raise TuningError(
                    f"no dictionary of size <= {limit} meets eps={eps}; "
                    f"the tolerance may be too tight for this data")
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if feasible(mid):
                hi = mid
            else:
                lo = mid
        return hi


def tune_dictionary_size(a, eps: float, cost_model: CostModel, *,
                         objective: str = "time", candidates=None,
                         subset_fraction: float = 0.25, trials: int = 1,
                         seed=None,
                         workers: int | None = None,
                         backend=None) -> TuningResult:
    """Pick L* minimising the platform cost (Sec. VII protocol).

    Parameters
    ----------
    a:
        Data matrix ``(M, N)``.
    cost_model:
        Platform-bound Eqs. 2–4.
    objective:
        "time" (Eq. 2), "energy" (Eq. 3) or "memory" (Eq. 4).
    candidates:
        Candidate L values; defaults to a geometric grid above L_min.
    subset_fraction:
        Fraction of columns used for α estimation.
    workers:
        Worker count for the α estimations (trial-/column-parallel);
        the tuned L* is identical to the serial run.
    backend:
        OMP kernel backend for every α-estimation encode (see
        :mod:`repro.linalg.kernels`).  ``None`` keeps the process
        default.

    Raises
    ------
    TuningError
        When no candidate is feasible at the requested ε.
    """
    from repro.store.column_store import check_matrix_or_store, take_columns

    a = check_matrix_or_store(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    m, n = a.shape
    rng = as_generator(seed)
    n_sub = max(min(n, int(round(subset_fraction * n))), 2)
    order = rng.permutation(n)

    with obs.span("tuner.tune"), use_backend(backend):
        if candidates is None:
            l_min = find_min_feasible_size(a, eps, seed=derive_seed(seed, 7),
                                           subset_fraction=subset_fraction,
                                           trials=trials, workers=workers)
            candidates = default_candidates(m, n, l_min)
        candidates = sorted({check_positive_int(c, "candidate")
                             for c in candidates})

        table = []
        columns_read = 0
        for l in candidates:
            # A candidate larger than the subset would sample every
            # subset column; use a subset at least twice the candidate
            # size.
            n_eff = min(max(n_sub, 2 * l), n)
            if l > n_eff:
                continue
            columns_read = max(columns_read, n_eff)
            sub = take_columns(a, order[:n_eff])
            est = measure_alpha(sub, l, eps, trials=trials,
                                seed=derive_seed(seed, 2, l),
                                workers=workers)
            if not est.feasible:
                continue
            predicted_nnz = est.mean * n
            cost = cost_model.objective(objective, m, l, predicted_nnz, n)
            table.append((l, est.mean, predicted_nnz, cost))
    obs.inc("tuner.candidates_evaluated", len(candidates))
    obs.inc("tuner.candidates_feasible", len(table))
    if not table:
        raise TuningError(
            f"no feasible candidate among {candidates} at eps={eps}")
    best = min(table, key=lambda row: row[3])
    return TuningResult(best_size=best[0], objective=objective,
                        table=table, subset_columns=columns_read)


@dataclass
class FastTuningResult:
    """Outcome of a joint (L, RC) tuner run.

    Attributes
    ----------
    best_size:
        The cost-minimising dictionary size L*.
    best_rc:
        The cost-minimising relative-complexity budget (``1.0`` means a
        dense dictionary wins — e.g. on memory-bound platforms where
        the nnz(C) term dominates, or when the grid has no useful RC).
    objective:
        Which cost was minimised ("time", "energy", "memory").
    table:
        Per-candidate rows ``(L, rc, alpha, predicted_nnz, cost)``.
    subset_columns:
        Data columns actually read (same accounting as
        :class:`TuningResult`).
    """

    best_size: int
    best_rc: float
    objective: str
    table: list = field(default_factory=list)
    subset_columns: int = 0

    def cost_of(self, size: int, rc: float) -> float:
        """Predicted cost of an (L, RC) candidate from the table."""
        for l, r, _alpha, _nnz, cost in self.table:
            if l == size and r == rc:
                return cost
        raise KeyError(f"(size={size}, rc={rc}) not in tuning table")


def predicted_factor_nnz(m: int, l: int, rc: float) -> int:
    """Planned ``Σⱼ nnz(Sⱼ)`` for a fit at budget ``rc``.

    Floored at ``M + L`` — no factorisation of an ``M×L`` operator can
    touch fewer entries and keep every row/column reachable — so the
    tuner never credits an unphysical budget.
    """
    return max(int(round(rc * m * l)), m + l)


def tune_fast_dictionary(a, eps: float, cost_model: CostModel, *,
                         rc_grid=(0.1, 0.25, 0.5, 1.0),
                         objective: str = "time", candidates=None,
                         subset_fraction: float = 0.25, trials: int = 1,
                         seed=None, workers: int | None = None,
                         backend=None) -> FastTuningResult:
    """Jointly pick (L*, RC*) minimising the factored Eq. 2/3/4 cost.

    Extends :func:`tune_dictionary_size` with the fast-transform axis:
    the α(L) estimation (the expensive part — real encodes on a data
    subset) is shared across the RC grid, because the factored
    dictionary encodes against the materialised ``D̂ ≈ D`` and so has
    the same expected per-column density; only the model evaluation
    differs, via the ``transform_nnz`` term of the extended Eqs. 2–4.
    ``rc = 1.0`` rows use the plain dense model (``transform_nnz`` of
    ``M·L``), so the dense optimum is always in the running.

    Returns a :class:`FastTuningResult`; the dense-only table of the
    underlying run is reproducible by filtering ``rc == 1.0`` rows.
    """
    from repro.store.column_store import check_matrix_or_store

    rc_grid = sorted({float(check_fraction(rc, "rc")) for rc in rc_grid})
    a = check_matrix_or_store(a, "A")
    m, n = a.shape
    base = tune_dictionary_size(a, eps, cost_model, objective=objective,
                                candidates=candidates,
                                subset_fraction=subset_fraction,
                                trials=trials, seed=seed, workers=workers,
                                backend=backend)
    table = []
    for l, alpha, predicted_nnz, _dense_cost in base.table:
        for rc in rc_grid:
            tnnz = None if rc >= 1.0 else predicted_factor_nnz(m, l, rc)
            cost = cost_model.objective(objective, m, l, predicted_nnz, n,
                                        transform_nnz=tnnz)
            table.append((l, rc, alpha, predicted_nnz, cost))
    best = min(table, key=lambda row: row[4])
    obs.inc("tuner.fast_candidates_evaluated", len(table))
    return FastTuningResult(best_size=best[0], best_rc=best[1],
                            objective=objective, table=table,
                            subset_columns=base.subset_columns)


def _tuning_program(comm, a, eps, objective, candidates, n_sub, order,
                    trials, seed, cost_kind_args):
    """Rank program: candidates partitioned across ranks (Sec. VII on
    the cluster, embarrassingly parallel), results allgathered."""
    from repro.core.exd import exd_transform
    from repro.store.column_store import take_columns

    rank, p = comm.Get_rank(), comm.Get_size()
    n = a.shape[1]
    mine = [c for i, c in enumerate(candidates) if i % p == rank]
    local_rows = []
    local_read = 0
    for l in mine:
        n_eff = min(max(n_sub, 2 * l), n)
        if l > n_eff:
            continue
        local_read = max(local_read, n_eff)
        sub = take_columns(a, order[:n_eff])
        alphas = []
        feasible = True
        for t in range(trials):
            transform, stats = exd_transform(
                sub, l, eps, seed=derive_seed(seed, 2, l, t))
            comm.charge_flops(stats.flops)
            alphas.append(transform.alpha)
            feasible = feasible and stats.all_converged
        if feasible:
            local_rows.append((l, float(np.mean(alphas))))
    everyone = comm.allgather((local_rows, local_read))
    rows = sorted(r for part, _ in everyone for r in part)
    columns_read = max(read for _, read in everyone)
    if comm.Get_rank() != 0:
        return None
    m = a.shape[0]
    kind, model = cost_kind_args
    table = [(l, alpha, alpha * n,
              model.objective(kind, m, l, alpha * n, n))
             for l, alpha in rows]
    return table, columns_read


def tune_dictionary_size_distributed(a, eps: float, cost_model: CostModel,
                                     *, objective: str = "time",
                                     candidates=None,
                                     subset_fraction: float = 0.25,
                                     trials: int = 1, seed=None,
                                     backend: str | None = None):
    """Sec. VII tuning executed on the emulated target cluster.

    Candidate dictionary sizes are partitioned across the ranks (the
    α estimations are independent), so Table II's "tuning on 64 cores"
    can be simulated.  Returns ``(TuningResult, SPMDResult)``.

    ``a`` may be a :class:`~repro.store.ColumnStore`; each rank then
    reads only the subset columns its own candidates probe from disk.
    ``backend`` selects the SPMD execution backend (see
    :func:`repro.mpi.run_spmd`); the table is identical either way.
    """
    from repro.mpi.runtime import run_spmd
    from repro.store.column_store import check_matrix_or_store

    a = check_matrix_or_store(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    m, n = a.shape
    rng = as_generator(seed)
    n_sub = max(min(n, int(round(subset_fraction * n))), 2)
    order = rng.permutation(n)
    if candidates is None:
        l_min = find_min_feasible_size(a, eps, seed=derive_seed(seed, 7),
                                       subset_fraction=subset_fraction,
                                       trials=trials)
        candidates = default_candidates(m, n, l_min)
    candidates = sorted({check_positive_int(c, "candidate")
                         for c in candidates})
    with obs.span("tuner.tune_distributed"):
        result = run_spmd(0, _tuning_program, a, eps, objective, candidates,
                          n_sub, order, trials, seed,
                          (objective, cost_model),
                          cluster=cost_model.cluster, backend=backend)
    table, columns_read = result.returns[0]
    obs.inc("tuner.candidates_evaluated", len(candidates))
    obs.inc("tuner.candidates_feasible", len(table))
    if not table:
        raise TuningError(
            f"no feasible candidate among {candidates} at eps={eps}")
    best = min(table, key=lambda row: row[3])
    tuning = TuningResult(best_size=best[0], objective=objective,
                          table=table, subset_columns=columns_read)
    return tuning, result

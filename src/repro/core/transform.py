"""The transformed dataset ``A ≈ D C``.

Holds the dense dictionary and sparse coefficients together with the
error budget they were built for, and exposes the quantities the
performance model consumes (``nnz``, ``α``, per-node memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.dictionary import Dictionary
from repro.errors import ValidationError
from repro.linalg.norms import relative_frobenius_error
from repro.sparse.csc import CSCMatrix


@dataclass
class TransformedData:
    """Result of an ExD (or baseline) projection.

    Attributes
    ----------
    dictionary:
        The ``(M, L)`` dictionary — any
        :class:`~repro.core.dictionary.DictOperator` (dense
        :class:`~repro.core.dictionary.Dictionary`, factored
        :class:`~repro.core.fastdict.FastDict`, or the evolve-path
        block operator).
    coefficients:
        Sparse ``(L, N)`` coefficient matrix.
    eps:
        Error tolerance the transform was built for.
    method:
        Provenance tag ("exd", "rcss", "oasis", "rankmap").
    """

    dictionary: Dictionary
    coefficients: CSCMatrix
    eps: float
    method: str = "exd"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.coefficients.shape[0] != self.dictionary.size:
            raise ValidationError(
                f"C has {self.coefficients.shape[0]} rows but D has "
                f"{self.dictionary.size} atoms")

    # shape aliases matching the paper's notation --------------------------
    @property
    def m(self) -> int:
        """Signal dimension M."""
        return self.dictionary.m

    @property
    def l(self) -> int:
        """Dictionary size L."""
        return self.dictionary.size

    @property
    def n(self) -> int:
        """Number of data columns N."""
        return self.coefficients.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the (approximated) data matrix."""
        return (self.m, self.n)

    @property
    def nnz(self) -> int:
        """nnz(C) — drives arithmetic and memory costs."""
        return self.coefficients.nnz

    @property
    def alpha(self) -> float:
        """Density α = nnz(C)/N (average non-zeros per column, Eq. 5)."""
        return self.nnz / self.n

    @property
    def memory_words(self) -> int:
        """Total words to store D and C (data + index arrays count as
        words for the index overhead the paper's Table III ignores; we
        report value words only to stay comparable)."""
        return self.dictionary.memory_words + self.nnz

    def memory_words_per_node(self, p: int) -> int:
        """Eq. 4: per-node footprint ``M·L + (nnz(C) + N)/P``."""
        if p < 1:
            raise ValidationError(f"P must be >= 1, got {p}")
        return self.dictionary.memory_words + (self.nnz + self.n + p - 1) // p

    # numerics --------------------------------------------------------------
    def reconstruct(self) -> np.ndarray:
        """Materialise ``D @ C`` densely (small problems / tests)."""
        return self.dictionary.atoms @ self.coefficients.to_dense()

    def reconstruct_columns(self, cols) -> np.ndarray:
        """Materialise a subset of columns of ``D @ C``."""
        sub = self.coefficients.select_columns(np.asarray(cols))
        return self.dictionary.atoms @ sub.to_dense()

    def transformation_error(self, a) -> float:
        """``‖A − DC‖_F / ‖A‖_F`` against the original data.

        Accepts a :class:`~repro.store.ColumnStore`: the error is then
        accumulated block by block so neither ``A`` nor ``DC`` is ever
        materialised in full.
        """
        from repro.store.column_store import is_column_store

        if not is_column_store(a):
            return relative_frobenius_error(a, self.reconstruct())
        if a.shape != self.shape:
            raise ValidationError(
                f"shape mismatch: {a.shape} vs {self.shape}")
        num_sq = den_sq = 0.0
        for lo, hi, raw in a.iter_blocks(1024):
            approx = self.dictionary.atoms @ \
                self.coefficients.slice_columns(lo, hi).to_dense()
            num_sq += float(np.sum((raw - approx) ** 2))
            den_sq += float(np.sum(raw ** 2))
        if den_sq == 0.0:
            return 0.0 if num_sq == 0.0 else float("inf")
        return float(np.sqrt(num_sq / den_sq))

    def project_vector(self, x: np.ndarray) -> np.ndarray:
        """``(DC) x`` — the approximated data applied to a vector.

        Routes ``D`` through the dictionary operator, so a factored
        dictionary pays its ``O(transform_nnz)`` apply.
        """
        return self.dictionary.apply(self.coefficients.matvec(x))

    def project_adjoint(self, y: np.ndarray) -> np.ndarray:
        """``(DC)ᵀ y``."""
        return self.coefficients.rmatvec(self.dictionary.apply_t(y))

    def __repr__(self) -> str:
        return (f"TransformedData(method={self.method!r}, M={self.m}, "
                f"L={self.l}, N={self.n}, nnz={self.nnz}, eps={self.eps})")

"""Evolving-data updates (Sec. V-E, Fig. 3).

When new columns ``A_new`` arrive:

1. sparse-code them against the *existing* dictionary (OMP, step 3 of
   Alg. 1).  If every column meets ε, simply append the codes;
2. otherwise run ExD on the unrepresentable remainder to get
   ``(D_new, C_new)`` and form the zero-padded block structure

   ::

        D' = [D  D_new]          C' = [ C   C_app      0   ]
                                      [ 0     0      C_new ]

   so the whole updated dataset satisfies ``A' ≈ D'C'`` without
   re-transforming the original columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dictionary import Dictionary
from repro.core.exd import exd_transform, normalize_columns, _rescale_columns
from repro.core.transform import TransformedData
from repro.errors import ValidationError
from repro.linalg.omp import ENCODE_BLOCK_COLS, batch_omp_matrix
from repro.sparse.csc import CSCMatrix
from repro.utils.validation import check_matrix


@dataclass
class ExtendResult:
    """Outcome of one evolving-data update.

    Attributes
    ----------
    transform:
        The updated transform covering ``[A, A_new]``.
    appended_columns:
        New columns representable by the old dictionary.
    extended_columns:
        New columns that required dictionary growth.
    dictionary_grew:
        Whether ``D_new`` atoms were added.
    """

    transform: TransformedData
    appended_columns: int
    extended_columns: int
    dictionary_grew: bool


def _stream_new_column_codes(transform: TransformedData, store,
                             *, workers, block_width):
    """Phase-1 coding of store-backed new columns, block by block.

    Blocks are aligned to ``A_new``'s own first column in
    :data:`~repro.linalg.omp.ENCODE_BLOCK_COLS` panels — the same
    partition the one-shot in-memory coding uses internally — so the
    returned codes and ε verdicts are bit-identical to feeding the
    dense ``store.as_array()`` through :func:`batch_omp_matrix`.
    """
    eps = transform.eps
    normalize = bool(transform.meta.get("normalized", True))
    width = block_width if block_width is not None \
        else 4 * ENCODE_BLOCK_COLS
    if width <= 0 or width % ENCODE_BLOCK_COLS:
        raise ValidationError(
            f"block_width must be a positive multiple of "
            f"{ENCODE_BLOCK_COLS}, got {block_width}")
    gram = transform.dictionary.gram()
    parts, masks = [], []
    for _lo, _hi, raw in store.iter_blocks(width):
        if normalize:
            work, norms = normalize_columns(raw)
        else:
            work, norms = raw, None
        c_blk, st = batch_omp_matrix(transform.dictionary, work,
                                     eps, gram=gram, workers=workers)
        if normalize:
            c_blk = _rescale_columns(c_blk, norms)
        parts.append(c_blk)
        masks.append(st.converged_mask)
    return CSCMatrix.hstack_all(parts), np.concatenate(masks)


def extend_transform(transform: TransformedData, a_new, *, seed=None,
                     new_dictionary_size: int | None = None,
                     workers: int | None = None,
                     block_width: int | None = None) -> ExtendResult:
    """Incorporate new columns into an existing ExD transform.

    Parameters
    ----------
    transform:
        The current ``A ≈ DC`` (must be an ExD-style sparse transform).
        The dictionary may be any ``DictOperator``: a factored
        :class:`~repro.core.fastdict.FastDict` base grows into a
        ``[FastDict | dense C]`` block operator, keeping the factored
        apply for the base atoms.
    a_new:
        New columns, shape ``(M, N_new)`` — a dense array or a
        :class:`~repro.store.ColumnStore` (the new columns are then
        streamed from disk; the result is bit-identical to the dense
        path).
    new_dictionary_size:
        Dictionary size for the fallback ExD run on unrepresentable
        columns; defaults to ``min(L, N_fail)`` where N_fail is their
        count.
    workers:
        Column-parallel Batch-OMP worker count for the phase-1 coding
        (and the fallback ExD run); output is identical to serial.
    block_width:
        Streaming block width for a store-backed ``a_new`` (multiple of
        :data:`~repro.linalg.omp.ENCODE_BLOCK_COLS`); ignored for dense
        input.
    """
    from repro.store.column_store import is_column_store, take_columns

    streamed = is_column_store(a_new)
    if not streamed:
        a_new = check_matrix(a_new, "A_new")
    if a_new.shape[0] != transform.m:
        raise ValidationError(
            f"A_new has {a_new.shape[0]} rows, transform expects "
            f"{transform.m}")
    eps = transform.eps
    normalize = bool(transform.meta.get("normalized", True))

    # Phase 1: code the new columns against the existing dictionary.
    # The per-column ε verdicts come straight from Batch-OMP — a dense
    # O(M·N·L) re-reconstruction would be redundant, and its different
    # numerical floor could disagree with the solver at tight eps.
    if streamed:
        codes, col_ok = _stream_new_column_codes(
            transform, a_new, workers=workers, block_width=block_width)
    else:
        if normalize:
            work, norms = normalize_columns(a_new)
        else:
            work, norms = a_new, None
        codes, stats = batch_omp_matrix(transform.dictionary, work,
                                        eps, workers=workers)
        col_ok = stats.converged_mask
        if normalize:
            codes = _rescale_columns(codes, norms)
    ok_idx = np.nonzero(col_ok)[0]
    fail_idx = np.nonzero(~col_ok)[0]

    if fail_idx.size == 0:
        appended = transform.coefficients.hstack(codes)
        updated = TransformedData(dictionary=transform.dictionary,
                                  coefficients=appended, eps=eps,
                                  method=transform.method,
                                  meta=dict(transform.meta))
        return ExtendResult(transform=updated,
                            appended_columns=int(ok_idx.size),
                            extended_columns=0, dictionary_grew=False)

    # Phase 2: the remainder spans new structure — run ExD on it and
    # zero-pad (Fig. 3).  The remainder is gathered densely: by
    # assumption it is the small unrepresentable tail, not the dataset.
    remainder = take_columns(a_new, fail_idx)
    l_new = new_dictionary_size or min(transform.l, remainder.shape[1])
    l_new = min(l_new, remainder.shape[1])
    sub_transform, _ = exd_transform(remainder, l_new, eps, seed=seed,
                                     normalize=normalize, workers=workers)
    new_atoms = Dictionary(sub_transform.dictionary.atoms,
                           np.full(sub_transform.l, -1, dtype=np.int64))
    grown = transform.dictionary.concat(new_atoms)

    # Rebuild the new-column block preserving the original column order:
    # representable columns keep their old-dictionary codes (zero-padded
    # below); unrepresentable ones take their D_new codes shifted below
    # the old atoms (Fig. 3's block structure).
    from repro.sparse.builder import ColumnBuilder
    builder = ColumnBuilder(nrows=grown.size)
    fail_pos = {int(j): k for k, j in enumerate(fail_idx)}
    sub_c = sub_transform.coefficients
    for j in range(a_new.shape[1]):
        if col_ok[j]:
            lo, hi = codes.indptr[j], codes.indptr[j + 1]
            builder.add_column(codes.indices[lo:hi], codes.data[lo:hi])
        else:
            k = fail_pos[j]
            lo, hi = sub_c.indptr[k], sub_c.indptr[k + 1]
            builder.add_column(sub_c.indices[lo:hi] + transform.l,
                               sub_c.data[lo:hi])
    new_block = builder.finalize()
    combined = transform.coefficients.pad_rows(grown.size).hstack(new_block)
    updated = TransformedData(dictionary=grown, coefficients=combined,
                              eps=eps, method=transform.method,
                              meta=dict(transform.meta))
    return ExtendResult(transform=updated,
                        appended_columns=int(ok_idx.size),
                        extended_columns=int(fail_idx.size),
                        dictionary_grew=True)


def _extend_rank_program(comm, transform, a_new, seed,
                         new_dictionary_size, workers=None):
    """Rank program: phase 1 of the update (coding new columns against
    the existing dictionary) is embarrassingly parallel over columns.

    Rank 0 runs the (rare) dictionary-growth fallback serially and
    returns the combined result.
    """
    rank, p = comm.Get_rank(), comm.Get_size()
    n_new = a_new.shape[1]
    lo, hi = rank * n_new // p, (rank + 1) * n_new // p
    block = a_new[:, lo:hi]
    normalize = bool(transform.meta.get("normalized", True))
    if normalize and block.shape[1]:
        work, _ = normalize_columns(block)
    else:
        work = block
    if block.shape[1]:
        _, stats = batch_omp_matrix(transform.dictionary, work,
                                    transform.eps, workers=workers)
        comm.charge_flops(stats.flops)
    comm.barrier()
    if rank != 0:
        return None
    # Root finalises with the serial path (phase 2 dictionary growth is
    # a small remainder by assumption; re-coding phase 1 serially keeps
    # the result byte-identical to extend_transform).
    return extend_transform(transform, a_new, seed=seed,
                            new_dictionary_size=new_dictionary_size,
                            workers=workers)


def extend_transform_distributed(transform: TransformedData, a_new,
                                 cluster, *, seed=None,
                                 new_dictionary_size: int | None = None,
                                 workers: int | None = None):
    """Evolving-data update with phase-1 coding costed on the cluster.

    Returns ``(ExtendResult, SPMDResult)`` — the simulated time covers
    the parallel OMP coding of the new columns (the dominant cost of an
    update; Sec. V-E notes the whole point is avoiding a full
    re-transform).
    """
    from repro.mpi.runtime import run_spmd
    from repro.store.column_store import is_column_store

    if is_column_store(a_new):
        raise ValidationError(
            "extend_transform_distributed needs an in-memory A_new; "
            "stream store-backed updates through extend_transform")
    a_new = check_matrix(a_new, "A_new")
    result = run_spmd(0, _extend_rank_program, transform, a_new, seed,
                      new_dictionary_size, workers, cluster=cluster)
    return result.returns[0], result

"""The performance model of Sec. VI-B (Eqs. 2–4).

Costs are expressed in FLOP-equivalents: one communicated word counts as
``R_bf`` operations (time or energy flavour).  The model is deliberately
simple — it ignores memory hierarchy, load imbalance and latency — and
Fig. 8 verifies that it still predicts the *trend* of the simulated
(and, on the authors' cluster, measured) runtime.

Dense-baseline counterparts (``AᵀA x`` with column-partitioned ``A``)
are provided for the Fig. 7 / Table III comparisons.

Factored-dictionary extension: every Eq. 2–4 entry point accepts
``transform_nnz`` — the cost of one ``Dᵀx`` apply.  The paper treats
this as the fixed dense constant ``M·L``; a sparse-factor fast
transform (:mod:`repro.core.fastdict`) replaces it with
``Σⱼ nnz(Sⱼ) = RC·M·L``, which changes both the arithmetic term of
Eqs. 2/3 and the dictionary-storage term of Eq. 4 while leaving the
communication term (a function of the *shape*, not the storage) alone.
Passing ``transform_nnz=None`` (or ``M·L``) reproduces the paper's
dense numbers bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError, ValidationError
from repro.platform.calibrate import RbfRatios, calibrate_from_spec
from repro.platform.cluster import ClusterConfig


def _check(m: int, nnz: int, p: int) -> None:
    if m < 1 or p < 1 or nnz < 0:
        raise ValidationError(
            f"invalid cost query: M={m}, nnz={nnz}, P={p}")


def _resolve_transform_nnz(m: int, l: int, transform_nnz) -> int:
    if transform_nnz is None:
        return m * l
    transform_nnz = int(transform_nnz)
    if transform_nnz < 0:
        raise ValidationError(
            f"transform_nnz must be >= 0, got {transform_nnz}")
    return transform_nnz


def runtime_cost(m: int, l: int, nnz: int, p: int, rbf_time: float, *,
                 transform_nnz: int | None = None) -> float:
    """Eq. 2: ``(T + nnz(C))/P + min(M, L)·R_bf^time`` (FLOP-equiv.).

    ``T`` is the dictionary-apply cost per Gram update: the paper's
    dense ``M·L`` by default, or the factored ``Σⱼ nnz(Sⱼ)`` when
    ``transform_nnz`` is given (see :mod:`repro.core.fastdict`).

    The communication term vanishes on a single processor — no message
    passing happens, which is what makes the optimal L platform-
    dependent (P=1 tolerates large dictionaries, many-node platforms pay
    ``R_bf`` per word until L reaches M, after which redundancy is free
    on the wire).  Factoring ``D`` does not change the communicated
    vector lengths, so the ``min(M, L)`` term is unaffected by
    ``transform_nnz``.
    """
    _check(m, nnz, p)
    if l < 1:
        raise ValidationError(f"L must be >= 1, got {l}")
    tnnz = _resolve_transform_nnz(m, l, transform_nnz)
    comm = min(m, l) * rbf_time if p > 1 else 0.0
    return (tnnz + nnz) / p + comm


def energy_cost(m: int, l: int, nnz: int, p: int, rbf_energy: float, *,
                transform_nnz: int | None = None) -> float:
    """Eq. 3: same form with the energy flavour of R_bf."""
    return runtime_cost(m, l, nnz, p, rbf_energy,
                        transform_nnz=transform_nnz)


def memory_cost_per_node(m: int, l: int, nnz: int, n: int, p: int, *,
                         transform_nnz: int | None = None) -> float:
    """Eq. 4: per-node words ``W_D + (nnz(C) + N)/P``.

    ``W_D`` is the replicated dictionary storage: dense ``M·L`` by
    default, or the factor nnz for a fast-transform dictionary.
    """
    _check(m, nnz, p)
    if l < 1 or n < 1:
        raise ValidationError(f"L and N must be >= 1, got {l}, {n}")
    tnnz = _resolve_transform_nnz(m, l, transform_nnz)
    return tnnz + (nnz + n) / p


def dense_runtime_cost(m: int, n: int, p: int, rbf_time: float) -> float:
    """Eq. 2 for the untransformed baseline ``AᵀA x``.

    With column-partitioned ``A``: ``2·M·N/P`` multiplies and an
    M-word reduce+broadcast.
    """
    _check(m, 0, p)
    if n < 1:
        raise ValidationError(f"N must be >= 1, got {n}")
    return 2 * m * n / p + m * rbf_time


def dense_memory_per_node(m: int, n: int, p: int) -> float:
    """Per-node words to hold the dense column block plus the iterate."""
    _check(m, 0, p)
    if n < 1:
        raise ValidationError(f"N must be >= 1, got {n}")
    return (m * n + n) / p


@dataclass
class CostModel:
    """Eqs. 2–4 bound to a concrete platform.

    ``rbf`` defaults to the analytic calibration of the cluster's
    machine spec; pass a measured :class:`RbfRatios` to use host
    micro-benchmarks instead.
    """

    cluster: ClusterConfig
    rbf: RbfRatios | None = None

    def __post_init__(self) -> None:
        if self.rbf is None:
            self.rbf = calibrate_from_spec(self.cluster)

    @property
    def p(self) -> int:
        """Processor count of the bound platform."""
        return self.cluster.size

    def time(self, m: int, l: int, nnz: int, *,
             transform_nnz: int | None = None) -> float:
        """Eq. 2 in FLOP-equivalents for one Gram update."""
        return runtime_cost(m, l, nnz, self.p, self.rbf.time,
                            transform_nnz=transform_nnz)

    def time_seconds(self, m: int, l: int, nnz: int, *,
                     transform_nnz: int | None = None) -> float:
        """Eq. 2 converted to predicted seconds per update."""
        return self.time(m, l, nnz, transform_nnz=transform_nnz) \
            / self.cluster.machine.flop_rate

    def energy(self, m: int, l: int, nnz: int, *,
               transform_nnz: int | None = None) -> float:
        """Eq. 3 in FLOP-equivalents."""
        return energy_cost(m, l, nnz, self.p, self.rbf.energy,
                           transform_nnz=transform_nnz)

    def energy_joules(self, m: int, l: int, nnz: int, *,
                      transform_nnz: int | None = None) -> float:
        """Eq. 3 converted to predicted joules per update."""
        return self.energy(m, l, nnz, transform_nnz=transform_nnz) \
            * self.cluster.machine.energy_per_flop

    def memory(self, m: int, l: int, nnz: int, n: int, *,
               transform_nnz: int | None = None) -> float:
        """Eq. 4 per-node words."""
        return memory_cost_per_node(m, l, nnz, n, self.p,
                                    transform_nnz=transform_nnz)

    def dense_time(self, m: int, n: int) -> float:
        """Baseline Eq. 2 for ``AᵀA x``."""
        return dense_runtime_cost(m, n, self.p, self.rbf.time)

    def dense_time_seconds(self, m: int, n: int) -> float:
        """Baseline predicted seconds per update."""
        return self.dense_time(m, n) / self.cluster.machine.flop_rate

    def objective(self, kind: str, m: int, l: int, nnz: int, n: int, *,
                  transform_nnz: int | None = None) -> float:
        """Dispatch on the tuning objective ("time"/"energy"/"memory")."""
        if kind == "time":
            return self.time(m, l, nnz, transform_nnz=transform_nnz)
        if kind == "energy":
            return self.energy(m, l, nnz, transform_nnz=transform_nnz)
        if kind == "memory":
            return self.memory(m, l, nnz, n, transform_nnz=transform_nnz)
        raise PlatformError(
            f"unknown objective {kind!r}; choose time, energy or memory")

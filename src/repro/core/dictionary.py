"""Dictionary construction by uniform random column subsampling.

Algorithm 1 step 0: processor 0 draws a random size-L index subset of
``{0..N-1}`` and broadcasts it; every processor then loads
``D = A[:, I]``.  The theoretical backing (Sec. V-C) is subspace
sampling: with ``L = Ω(k log k / (1−δ)²)`` random columns the sampled
span captures the best rank-k approximation up to ``1/δ``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_positive_int


@dataclass(frozen=True)
class Dictionary:
    """A sampled dictionary ``D`` and the provenance of its atoms.

    Attributes
    ----------
    atoms:
        Dense ``(M, L)`` array of dictionary columns.
    indices:
        Source-column index in ``A`` of each atom (``-1`` for atoms that
        did not come from the dataset, e.g. after an evolving-data
        extension merged two dictionaries).
    """

    atoms: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        atoms = np.asarray(self.atoms, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.int64)
        if atoms.ndim != 2:
            raise ValidationError(f"atoms must be 2-D, got {atoms.ndim}-D")
        if indices.shape != (atoms.shape[1],):
            raise ValidationError(
                f"indices must have length L={atoms.shape[1]}, "
                f"got {indices.shape}")
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "indices", indices)

    @property
    def m(self) -> int:
        """Signal dimension (rows)."""
        return self.atoms.shape[0]

    @property
    def size(self) -> int:
        """Number of atoms L."""
        return self.atoms.shape[1]

    @property
    def memory_words(self) -> int:
        """Dense storage in words: M·L."""
        return self.m * self.size

    def gram(self) -> np.ndarray:
        """``DᵀD`` — precomputed once per Batch-OMP run."""
        return self.atoms.T @ self.atoms

    def concat(self, other: "Dictionary") -> "Dictionary":
        """Concatenate atom sets (evolving-data dictionary extension)."""
        if other.m != self.m:
            raise ValidationError(
                f"row mismatch: {self.m} vs {other.m}")
        return Dictionary(np.concatenate([self.atoms, other.atoms], axis=1),
                          np.concatenate([self.indices, other.indices]))


def sample_dictionary(a, size: int, *, seed=None,
                      replace: bool = False) -> Dictionary:
    """Draw ``size`` columns of ``a`` uniformly at random as atoms.

    ``replace=False`` (default) matches Algorithm 1; sampling with
    replacement is allowed only when ``size > N`` would otherwise be
    infeasible (and is rejected unless explicitly requested).
    """
    a = check_matrix(a, "A")
    size = check_positive_int(size, "size")
    n = a.shape[1]
    if size > n and not replace:
        raise ValidationError(
            f"cannot sample {size} distinct columns from N={n}; "
            f"pass replace=True to allow repetition")
    rng = as_generator(seed)
    idx = np.sort(rng.choice(n, size=size, replace=replace))
    return Dictionary(a[:, idx].copy(), idx)

"""Dictionary construction by uniform random column subsampling.

Algorithm 1 step 0: processor 0 draws a random size-L index subset of
``{0..N-1}`` and broadcasts it; every processor then loads
``D = A[:, I]``.  The theoretical backing (Sec. V-C) is subspace
sampling: with ``L = Ω(k log k / (1−δ)²)`` random columns the sampled
span captures the best rank-k approximation up to ``1/δ``.

This module also defines the ``DictOperator`` protocol — the linear-
operator contract every encode path (serial, parallel, streaming,
serving) programs against, so a factored
:class:`~repro.core.fastdict.FastDict` can replace the dense GEMM
without the callers knowing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ValidationError
from repro.utils.rng import as_generator
from repro.utils.validation import check_matrix, check_positive_int


@runtime_checkable
class DictOperator(Protocol):
    """Linear-operator view of a dictionary ``D`` (M × L).

    Implemented by the dense :class:`Dictionary`, the factored
    :class:`~repro.core.fastdict.FastDict` and the evolve-path
    :class:`~repro.core.fastdict.BlockDictOperator`.  Consumers
    (``batch_omp_matrix``, the parallel engine, ``StreamingEncoder``,
    the serve registry/batcher) only touch these members, so the cost
    of applying ``D`` is whatever the operator's structure allows —
    ``O(M·L)`` dense, ``O(Σⱼ nnz(Sⱼ))`` factored.

    ``atoms`` must still materialise a dense ``(M, L)`` array (used for
    Gram precompute, reconstruction and serialisation); it must never
    be needed in a per-panel hot loop.
    """

    @property
    def m(self) -> int:
        """Signal dimension (rows of D)."""
        ...

    @property
    def size(self) -> int:
        """Number of atoms (columns of D)."""
        ...

    @property
    def atoms(self) -> np.ndarray:
        """Dense ``(M, L)`` materialisation."""
        ...

    @property
    def indices(self) -> np.ndarray:
        """Source-column provenance of each atom."""
        ...

    @property
    def transform_nnz(self) -> int:
        """Multiplies needed for one ``Dᵀx`` apply (Eq. 2 term)."""
        ...

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``D @ x`` for ``x`` of shape ``(L,)`` or ``(L, k)``."""
        ...

    def apply_t(self, a: np.ndarray) -> np.ndarray:
        """``Dᵀ @ a`` for ``a`` of shape ``(M,)`` or ``(M, k)``."""
        ...

    def gram(self) -> np.ndarray:
        """``G = DᵀD``, cached across calls."""
        ...


@dataclass(frozen=True)
class Dictionary:
    """A sampled dictionary ``D`` and the provenance of its atoms.

    Attributes
    ----------
    atoms:
        Dense ``(M, L)`` array of dictionary columns.
    indices:
        Source-column index in ``A`` of each atom (``-1`` for atoms that
        did not come from the dataset, e.g. after an evolving-data
        extension merged two dictionaries).
    """

    atoms: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        atoms = np.asarray(self.atoms, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.int64)
        if atoms.ndim != 2:
            raise ValidationError(f"atoms must be 2-D, got {atoms.ndim}-D")
        if indices.shape != (atoms.shape[1],):
            raise ValidationError(
                f"indices must have length L={atoms.shape[1]}, "
                f"got {indices.shape}")
        object.__setattr__(self, "atoms", atoms)
        object.__setattr__(self, "indices", indices)

    @property
    def m(self) -> int:
        """Signal dimension (rows)."""
        return self.atoms.shape[0]

    @property
    def size(self) -> int:
        """Number of atoms L."""
        return self.atoms.shape[1]

    @property
    def memory_words(self) -> int:
        """Dense storage in words: M·L."""
        return self.m * self.size

    @property
    def transform_nnz(self) -> int:
        """Dense apply cost: every ``Dᵀx`` touches all M·L entries."""
        return self.m * self.size

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``D @ x`` (dense GEMM)."""
        return self.atoms @ x

    def apply_t(self, a: np.ndarray) -> np.ndarray:
        """``Dᵀ @ a`` (dense GEMM) — bit-identical to ``atoms.T @ a``."""
        return self.atoms.T @ a

    def gram(self) -> np.ndarray:
        """``DᵀD`` — computed once and served from the process-wide
        Gram LRU on every later call (keyed on this exact atoms
        array, so repeated calls return the same cached object)."""
        from repro.linalg.parallel_omp import cached_gram
        return cached_gram(self.atoms)

    def concat(self, other: "Dictionary") -> "Dictionary":
        """Concatenate atom sets (evolving-data dictionary extension)."""
        if other.m != self.m:
            raise ValidationError(
                f"row mismatch: {self.m} vs {other.m}")
        return Dictionary(np.concatenate([self.atoms, other.atoms], axis=1),
                          np.concatenate([self.indices, other.indices]))


def sample_dictionary(a, size: int, *, seed=None,
                      replace: bool = False) -> Dictionary:
    """Draw ``size`` columns of ``a`` uniformly at random as atoms.

    ``replace=False`` (default) matches Algorithm 1; sampling with
    replacement is allowed only when ``size > N`` would otherwise be
    infeasible (and is rejected unless explicitly requested).
    """
    a = check_matrix(a, "A")
    size = check_positive_int(size, "size")
    n = a.shape[1]
    if size > n and not replace:
        raise ValidationError(
            f"cannot sample {size} distinct columns from N={n}; "
            f"pass replace=True to allow repetition")
    rng = as_generator(seed)
    idx = np.sort(rng.choice(n, size=size, replace=replace))
    return Dictionary(a[:, idx].copy(), idx)

"""Sparse-factor fast-transform dictionaries (ROADMAP item 3).

Le Magoarou & Gribonval ("Learning computationally efficient
dictionaries and their implementation as fast transforms", PAPERS.md)
observe that classical fast transforms are products of sparse factors,
and that a learned dictionary can be approximated the same way:

    D ≈ S₁ S₂ … S_J,    nnz(S₁…S_J) ≪ M·L

so that ``Dᵀx`` / ``Dx̂`` cost ``O(Σⱼ nnz(Sⱼ))`` instead of the dense
``O(M·L)`` that Eq. 2 of the paper treats as a fixed constant.

This module provides:

``FastFactor``
    One sparse factor ``Sⱼ = Pⱼ·Bⱼ`` — a row permutation times a
    block-diagonal matrix, stored as a stacked ``(nb, r, c)`` array so
    applying it is a single batched ``np.matmul`` (near-BLAS efficiency;
    an unstructured scipy CSR matvec at these densities is slower than
    the dense GEMM it replaces, which is why the Monarch-style fixed
    block structure is used instead of free-form sparsity).
``FastDict``
    A :class:`~repro.core.dictionary.DictOperator`: the factor chain
    plus the sampled-column provenance ``indices``.  Implements
    ``apply`` / ``apply_t`` / ``gram`` and therefore drops into every
    encode path (serial, parallel, streaming, serving).
``BlockDictOperator``
    ``[FastDict | dense C]`` — the evolve path grows a factored base
    with a dense extension block without refactorising.
``fit_fast_dict``
    Greedy hierarchical two-factor splits with alternating
    least-squares refinement — the "greedy sparse-factor fit" variant
    of the reference's hierarchical PALM, chosen because every
    sub-problem here is an exactly solvable (batched) linear LS.

The relative-complexity knob ``RC = nnz(S₁…S_J)/(M·L)`` is the single
budget parameter: the modeled apply speedup is ``1/RC`` and the
measured one tracks it (``benchmarks/bench_fastdict.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.linalg.norms import relative_frobenius_error
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "FastFactor",
    "FastDict",
    "BlockDictOperator",
    "FastDictConfig",
    "as_fast_dict_config",
    "fit_fast_dict",
    "operator_to_arrays",
    "operator_from_arrays",
]


class FastFactor:
    """One sparse factor ``S = P·B`` of shape ``(rows, cols)``.

    ``P`` is a ``rows_pad``-permutation and ``B`` is block-diagonal
    with ``nb`` dense blocks of shape ``(r, c)`` (``rows_pad = nb·r``,
    ``cols_pad = nb·c``).  Logical shapes smaller than the padded grid
    are handled by zero-masking the block entries that touch padded
    rows/columns, so ``nnz`` counts only live entries and applying the
    factor to a zero-padded vector is exact.
    """

    __slots__ = ("perm", "inv_perm", "blocks", "rows", "cols", "_bt")

    def __init__(self, perm, blocks, rows: int, cols: int):
        perm = np.asarray(perm, dtype=np.int64)
        blocks = np.ascontiguousarray(blocks, dtype=np.float64)
        if blocks.ndim != 3:
            raise ValidationError(
                f"blocks must be (nb, r, c), got shape {blocks.shape}")
        nb, r, c = blocks.shape
        if perm.shape != (nb * r,):
            raise ValidationError(
                f"perm length {perm.shape} does not match nb*r={nb * r}")
        if not (0 < rows <= nb * r and 0 < cols <= nb * c):
            raise ValidationError(
                f"logical shape ({rows}, {cols}) exceeds padded "
                f"({nb * r}, {nb * c})")
        self.perm = perm
        self.inv_perm = np.argsort(perm)
        self.blocks = blocks
        self.rows = int(rows)
        self.cols = int(cols)
        self._bt = None

    # -- structure ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """Logical ``(rows, cols)``."""
        return (self.rows, self.cols)

    @property
    def block_shape(self) -> tuple[int, int, int]:
        """``(nb, r, c)`` of the block-diagonal part."""
        return self.blocks.shape

    @property
    def rows_pad(self) -> int:
        return self.blocks.shape[0] * self.blocks.shape[1]

    @property
    def cols_pad(self) -> int:
        return self.blocks.shape[0] * self.blocks.shape[2]

    @property
    def nnz(self) -> int:
        """Stored nonzeros (padding entries are exact zeros)."""
        return int(np.count_nonzero(self.blocks))

    def padding_mask(self) -> np.ndarray:
        """Boolean ``(nb, r, c)``: True where an entry is *live*.

        An entry is live when its padded output row is reachable from a
        logical row (``perm[:rows]``) and its padded input column indexes
        a logical column (``< cols``).
        """
        nb, r, c = self.blocks.shape
        live_out = np.zeros(nb * r, dtype=bool)
        live_out[self.perm[:self.rows]] = True
        live_in = np.arange(nb * c) < self.cols
        return (live_out.reshape(nb, r)[:, :, None]
                & live_in.reshape(nb, c)[:, None, :])

    def mask_padding(self) -> None:
        """Zero every entry that touches a padded row/column."""
        self.blocks *= self.padding_mask()
        self._bt = None

    # -- linear maps -------------------------------------------------

    def _blocks_t(self) -> np.ndarray:
        if self._bt is None:
            self._bt = np.ascontiguousarray(self.blocks.transpose(0, 2, 1))
        return self._bt

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``S @ x`` for ``x`` of shape ``(cols, k)``."""
        nb, r, c = self.blocks.shape
        k = x.shape[1]
        if x.shape[0] != self.cols:
            raise ValidationError(
                f"apply: expected {self.cols} rows, got {x.shape[0]}")
        if self.cols_pad != self.cols:
            xp = np.zeros((self.cols_pad, k))
            xp[:self.cols] = x
        else:
            xp = x
        z = np.matmul(self.blocks, xp.reshape(nb, c, k)).reshape(-1, k)
        return z[self.perm[:self.rows]]

    def apply_t(self, a: np.ndarray) -> np.ndarray:
        """``Sᵀ @ a`` for ``a`` of shape ``(rows, k)``."""
        nb, r, c = self.blocks.shape
        k = a.shape[1]
        if a.shape[0] != self.rows:
            raise ValidationError(
                f"apply_t: expected {self.rows} rows, got {a.shape[0]}")
        w = np.zeros((self.rows_pad, k))
        w[self.perm[:self.rows]] = a
        out = np.matmul(self._blocks_t(), w.reshape(nb, r, k)).reshape(-1, k)
        return out[:self.cols]

    def materialize(self) -> np.ndarray:
        """Dense logical ``(rows, cols)`` matrix (fit/debug only)."""
        nb, r, c = self.blocks.shape
        b = np.zeros((self.rows_pad, self.cols_pad))
        for i in range(nb):
            b[i * r:(i + 1) * r, i * c:(i + 1) * c] = self.blocks[i]
        return b[self.perm[:self.rows], :self.cols]

    # -- constructors ------------------------------------------------

    @classmethod
    def permutation(cls, perm) -> "FastFactor":
        """Exact permutation factor (1×1 blocks of ones)."""
        perm = np.asarray(perm, dtype=np.int64)
        n = perm.shape[0]
        return cls(perm, np.ones((n, 1, 1)), n, n)

    @classmethod
    def diagonal(cls, scales) -> "FastFactor":
        """Exact diagonal factor (1×1 blocks)."""
        scales = np.asarray(scales, dtype=np.float64)
        n = scales.shape[0]
        return cls(np.arange(n), scales.reshape(n, 1, 1), n, n)

    def __getstate__(self):
        return (self.perm, self.blocks, self.rows, self.cols)

    def __setstate__(self, state):
        perm, blocks, rows, cols = state
        self.__init__(perm, blocks, rows, cols)


class FastDict:
    """Factored dictionary ``D ≈ S₁S₂…S_J`` (a ``DictOperator``).

    Drop-in replacement for :class:`~repro.core.dictionary.Dictionary`
    on every encode path: ``apply_t`` runs the factor chain (cost
    ``O(transform_nnz)`` per column), ``gram()`` materialises the atoms
    once and warms the process-wide Gram LRU, and ``atoms`` is the
    lazily materialised dense product (needed only for Gram
    precompute, reconstruction and serialisation — never in the
    per-panel hot loop).

    ``residual`` records ``‖D − Ŝ‖_F/‖D‖_F`` of the fit: encoding with
    an approximate factorisation solves the OMP problem for the
    *materialised* ``D̂``, so the reconstruction guarantee
    ``‖a − D̂x̂‖ ≤ ε‖a‖`` holds exactly for ``D̂`` and within
    ``ε + residual·‖x̂‖·‖D‖/‖a‖`` for the original ``D`` (see
    ``docs/fastdict.md``).  A ``residual`` of 0 (e.g. permutation /
    diagonal factors) makes every path bit-identical to dense.
    """

    def __init__(self, factors, indices=None, residual: float = 0.0):
        factors = tuple(factors)
        if not factors:
            raise ValidationError("FastDict needs at least one factor")
        for left, right in zip(factors, factors[1:]):
            if left.cols != right.rows:
                raise ValidationError(
                    f"factor chain mismatch: ({left.rows}, {left.cols}) "
                    f"cannot multiply ({right.rows}, {right.cols})")
        self.factors = factors
        self.indices = (np.arange(factors[-1].cols, dtype=np.int64)
                        if indices is None
                        else np.asarray(indices, dtype=np.int64))
        if self.indices.shape != (factors[-1].cols,):
            raise ValidationError(
                f"indices length {self.indices.shape} does not match "
                f"dictionary size {factors[-1].cols}")
        self.residual = float(residual)
        self._atoms = None

    # -- DictOperator protocol --------------------------------------

    @property
    def m(self) -> int:
        """Row dimension (signal length)."""
        return self.factors[0].rows

    @property
    def size(self) -> int:
        """Number of atoms L."""
        return self.factors[-1].cols

    @property
    def levels(self) -> int:
        """Number of factors J."""
        return len(self.factors)

    @property
    def atoms(self) -> np.ndarray:
        """Dense materialised ``Ŝ = S₁…S_J`` (computed once, cached)."""
        if self._atoms is None:
            x = np.eye(self.size)
            for f in reversed(self.factors):
                x = f.apply(x)
            self._atoms = x
        return self._atoms

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``D̂ @ x`` through the factor chain."""
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        for f in reversed(self.factors):
            x = f.apply(x)
        return x[:, 0] if squeeze else x

    def apply_t(self, a: np.ndarray) -> np.ndarray:
        """``D̂ᵀ @ a`` through the factor chain."""
        squeeze = a.ndim == 1
        if squeeze:
            a = a[:, None]
        for f in self.factors:
            a = f.apply_t(a)
        return a[:, 0] if squeeze else a

    def gram(self) -> np.ndarray:
        """``G = D̂ᵀD̂`` via the process-wide Gram LRU.

        Computed from the materialised atoms so the Gram bits are
        identical to the dense path's for an exact factorisation.
        """
        from repro.linalg.parallel_omp import cached_gram
        return cached_gram(self.atoms)

    @property
    def transform_nnz(self) -> int:
        """``Σⱼ nnz(Sⱼ)`` — the factored Eq. 2 transform term."""
        return sum(f.nnz for f in self.factors)

    @property
    def relative_complexity(self) -> float:
        """``RC = nnz(S₁…S_J)/(M·L)`` (1.0 would match dense cost)."""
        return self.transform_nnz / float(self.m * self.size)

    @property
    def memory_words(self) -> int:
        """Stored float64 words — factor nnz, not the dense M·L."""
        return self.transform_nnz

    def concat(self, other) -> "BlockDictOperator":
        """Append dense atoms (the evolve path) as a block operator."""
        from repro.core.dictionary import Dictionary
        if not isinstance(other, Dictionary):
            other = Dictionary(atoms=np.asarray(other, dtype=np.float64),
                               indices=np.arange(np.asarray(other).shape[1],
                                                 dtype=np.int64))
        return BlockDictOperator(self, other)

    def to_arrays(self) -> dict:
        """Flat array dict for npz round-trips (``fd_``-prefixed)."""
        arrays = {
            "fd_nfactors": np.int64(len(self.factors)),
            "fd_residual": np.float64(self.residual),
            "fd_indices": self.indices,
        }
        for j, f in enumerate(self.factors):
            arrays[f"fd{j}_perm"] = f.perm
            arrays[f"fd{j}_blocks"] = f.blocks
            arrays[f"fd{j}_shape"] = np.array([f.rows, f.cols],
                                              dtype=np.int64)
        return arrays

    @classmethod
    def from_arrays(cls, arrays) -> "FastDict":
        """Inverse of :meth:`to_arrays` (accepts an open npz too)."""
        n = int(np.asarray(arrays["fd_nfactors"]))
        factors = []
        for j in range(n):
            rows, cols = np.asarray(arrays[f"fd{j}_shape"], dtype=np.int64)
            factors.append(FastFactor(arrays[f"fd{j}_perm"],
                                      arrays[f"fd{j}_blocks"],
                                      int(rows), int(cols)))
        return cls(factors, indices=arrays["fd_indices"],
                   residual=float(np.asarray(arrays["fd_residual"])))

    def __getstate__(self):
        return (self.factors, self.indices, self.residual)

    def __setstate__(self, state):
        factors, indices, residual = state
        self.__init__(factors, indices=indices, residual=residual)

    def __repr__(self) -> str:
        return (f"FastDict(m={self.m}, size={self.size}, "
                f"levels={self.levels}, rc={self.relative_complexity:.3f}, "
                f"residual={self.residual:.3g})")


class BlockDictOperator:
    """``[base | ext]`` — factored base plus dense extension atoms.

    The evolve path (Alg. 1) grows a fitted dictionary with extension
    columns ``C``; when the base is a :class:`FastDict` the
    concatenation stays an operator: ``apply_t`` stacks the fast-chain
    result over a dense ``Cᵀ`` panel, so the Eq. 2 transform term is
    ``Σⱼ nnz(Sⱼ) + nnz(C)`` instead of ``M·(L + |C|)``.
    """

    def __init__(self, base: FastDict, ext):
        from repro.core.dictionary import Dictionary
        if not isinstance(ext, Dictionary):
            raise ValidationError("BlockDictOperator ext must be a "
                                  "dense Dictionary")
        if ext.m != base.m:
            raise ValidationError(
                f"extension rows {ext.m} != base rows {base.m}")
        self.base = base
        self.ext = ext
        self._atoms = None

    @property
    def m(self) -> int:
        return self.base.m

    @property
    def size(self) -> int:
        return self.base.size + self.ext.size

    @property
    def indices(self) -> np.ndarray:
        return np.concatenate([self.base.indices, self.ext.indices])

    @property
    def atoms(self) -> np.ndarray:
        if self._atoms is None:
            self._atoms = np.hstack([self.base.atoms, self.ext.atoms])
        return self._atoms

    def apply(self, x: np.ndarray) -> np.ndarray:
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = (self.base.apply(x[:self.base.size])
               + self.ext.atoms @ x[self.base.size:])
        return out[:, 0] if squeeze else out

    def apply_t(self, a: np.ndarray) -> np.ndarray:
        squeeze = a.ndim == 1
        if squeeze:
            a = a[:, None]
        out = np.vstack([self.base.apply_t(a), self.ext.atoms.T @ a])
        return out[:, 0] if squeeze else out

    def gram(self) -> np.ndarray:
        from repro.linalg.parallel_omp import cached_gram
        return cached_gram(self.atoms)

    @property
    def transform_nnz(self) -> int:
        return self.base.transform_nnz + int(np.count_nonzero(
            self.ext.atoms))

    @property
    def relative_complexity(self) -> float:
        return self.transform_nnz / float(self.m * self.size)

    @property
    def memory_words(self) -> int:
        return self.base.memory_words + self.ext.memory_words

    def concat(self, other) -> "BlockDictOperator":
        """Further growth extends the dense block."""
        from repro.core.dictionary import Dictionary
        if not isinstance(other, Dictionary):
            other = np.asarray(other, dtype=np.float64)
            other = Dictionary(other, np.full(other.shape[1], -1,
                                              dtype=np.int64))
        return BlockDictOperator(self.base, self.ext.concat(other))

    def to_arrays(self) -> dict:
        arrays = self.base.to_arrays()
        arrays["bd_ext_atoms"] = self.ext.atoms
        arrays["bd_ext_indices"] = self.ext.indices
        return arrays

    @classmethod
    def from_arrays(cls, arrays) -> "BlockDictOperator":
        from repro.core.dictionary import Dictionary
        base = FastDict.from_arrays(arrays)
        ext = Dictionary(atoms=np.asarray(arrays["bd_ext_atoms"],
                                          dtype=np.float64),
                         indices=np.asarray(arrays["bd_ext_indices"],
                                            dtype=np.int64))
        return cls(base, ext)

    def __repr__(self) -> str:
        return (f"BlockDictOperator(m={self.m}, size={self.size}, "
                f"base={self.base!r}, ext_size={self.ext.size})")


def operator_to_arrays(dictionary) -> tuple[str, dict]:
    """``(kind, arrays)`` for persisting a non-dense dictionary."""
    if isinstance(dictionary, FastDict):
        return "fastdict", dictionary.to_arrays()
    if isinstance(dictionary, BlockDictOperator):
        return "block", dictionary.to_arrays()
    raise ValidationError(
        f"cannot serialise dictionary of type {type(dictionary).__name__}")


def operator_from_arrays(kind: str, arrays):
    """Inverse of :func:`operator_to_arrays`."""
    if kind == "fastdict":
        return FastDict.from_arrays(arrays)
    if kind == "block":
        return BlockDictOperator.from_arrays(arrays)
    raise ValidationError(f"unknown dictionary kind {kind!r}")


@dataclass(frozen=True)
class FastDictConfig:
    """Fit budget for :func:`fit_fast_dict`.

    Attributes
    ----------
    rc:
        Relative-complexity target ``nnz(S₁…S_J)/(M·L)`` in (0, 1].
    levels:
        Number of factors J ≥ 2.
    iters:
        Alternating least-squares sweeps per two-factor split (and for
        the final global polish when ``levels == 2``).
    """

    rc: float = 0.25
    levels: int = 2
    iters: int = 10

    def __post_init__(self):
        check_fraction(self.rc, "rc")
        if check_positive_int(self.levels, "levels") < 2:
            raise ValidationError(f"levels must be >= 2, got {self.levels}")
        check_positive_int(self.iters, "iters")


def as_fast_dict_config(value) -> FastDictConfig:
    """Coerce a knob value (float RC or config) to a config."""
    if isinstance(value, FastDictConfig):
        return value
    return FastDictConfig(rc=float(value))


def _block_grid(rows: int, cols: int, budget: float) -> tuple[int, int, int]:
    """Pick ``(nb, r, c)`` so the block-diagonal holds ≈ ``budget`` nnz."""
    nb = max(1, int(round(rows * cols / max(budget, 1.0))))
    nb = min(nb, rows, cols)
    r = -(-rows // nb)
    c = -(-cols // nb)
    return nb, r, c


def _shuffle_perm(n: int, nb: int, r: int) -> np.ndarray:
    """Perfect-shuffle permutation interleaving the ``nb`` row blocks.

    Consecutive output rows are drawn from distinct blocks, so a chain
    of block-diagonal factors has full (not block-diagonal) support.
    """
    return np.arange(n).reshape(nb, r).T.ravel()


def _solve_blocks_given_rhs(factor: FastFactor, target: np.ndarray,
                            rhs: np.ndarray) -> None:
    """LS-optimal blocks for ``P·B·rhs ≈ target`` (batched, in place).

    The block-diagonal structure makes the problem separable: block i
    only sees target rows ``inv_perm`` maps into it and rhs rows
    ``i·c … i·c+c-1``, so each block is an independent ``(r, k)``
    least-squares solved by a batched pseudo-inverse.
    """
    nb, r, c = factor.blocks.shape
    k = target.shape[1]
    tp = np.zeros((factor.rows_pad, k))
    tp[factor.perm[:factor.rows]] = target
    t_blocks = tp.reshape(nb, r, k)
    rp = np.zeros((factor.cols_pad, k))
    rp[:rhs.shape[0]] = rhs
    r_blocks = rp.reshape(nb, c, k)
    factor.blocks[:] = np.matmul(t_blocks, np.linalg.pinv(r_blocks))
    factor.mask_padding()


def _solve_blocks_given_lhs(factor: FastFactor, target: np.ndarray,
                            lhs: np.ndarray) -> None:
    """LS-optimal blocks for ``lhs·P·B ≈ target`` (batched, in place).

    Column-separable: output column block k of ``B`` only multiplies
    the ``lhs·P`` columns of its own block.
    """
    nb, r, c = factor.blocks.shape
    m = target.shape[0]
    wp = np.zeros((m, factor.rows_pad))
    wp[:, :lhs.shape[1]] = lhs
    w2 = wp[:, factor.inv_perm]
    w_blocks = np.ascontiguousarray(
        w2.reshape(m, nb, r).transpose(1, 0, 2))
    tp = np.zeros((m, factor.cols_pad))
    tp[:, :target.shape[1]] = target
    t_blocks = np.ascontiguousarray(
        tp.reshape(m, nb, c).transpose(1, 0, 2))
    factor.blocks[:] = np.matmul(np.linalg.pinv(w_blocks), t_blocks)
    factor.mask_padding()


def _split_two(target: np.ndarray, rows: int, cols: int, budget: float,
               rng: np.random.Generator, iters: int,
               first: bool) -> tuple[FastFactor, np.ndarray]:
    """``target ≈ F · G``: block factor F ``(rows, cols)`` + dense G.

    G is initialised with a randomised range finder (the row space of
    ``target`` compressed to ``cols`` dimensions), then F and G are
    refined by alternating exact LS solves.
    """
    nb, r, c = _block_grid(rows, cols, budget)
    perm = (np.arange(nb * r, dtype=np.int64) if first
            else _shuffle_perm(nb * r, nb, r))
    factor = FastFactor(perm, np.zeros((nb, r, c)), rows, cols)
    y = target @ rng.standard_normal((target.shape[1], cols))
    q, _ = np.linalg.qr(y)
    g = q.T @ target
    for _ in range(max(iters, 1)):
        _solve_blocks_given_rhs(factor, target, g)
        f_dense = factor.materialize()
        g, *_ = np.linalg.lstsq(f_dense, target, rcond=None)
    return factor, g


def _final_factor(target: np.ndarray, rows: int, cols: int,
                  budget: float) -> FastFactor:
    """Project the dense remainder onto the last block factor.

    With a shuffle permutation the projection is just block truncation
    of ``Pᵀ·target`` — the LS-optimal blocks for a fixed identity lhs.
    """
    nb, r, c = _block_grid(rows, cols, budget)
    perm = _shuffle_perm(nb * r, nb, r)
    factor = FastFactor(perm, np.zeros((nb, r, c)), rows, cols)
    tp = np.zeros((factor.rows_pad, factor.cols_pad))
    tp[factor.perm[:rows], :cols] = target
    t_blocks = tp.reshape(nb, r, nb, c)
    factor.blocks[:] = t_blocks[np.arange(nb), :, np.arange(nb), :]
    factor.mask_padding()
    return factor


def _materialize_chain(factors) -> np.ndarray:
    """Dense product of a factor sub-chain."""
    x = np.eye(factors[-1].cols)
    for f in reversed(factors):
        x = f.apply(x)
    return x


def _polish_chain(target: np.ndarray, factors, iters: int) -> None:
    """Global alternating refinement of the chain's endpoint factors.

    The first and last factors admit exact separable LS solves against
    the materialised product of the *other* factors, so sweeping them
    is coordinate descent on ``‖D − S₁…S_J‖_F`` — it monotonically
    decreases the error and, for J = 2, refines the entire chain.
    (Middle factors of deeper chains are not separable; they keep their
    hierarchical fit.)
    """
    for _ in range(max(iters, 1)):
        _solve_blocks_given_rhs(factors[0], target,
                                _materialize_chain(factors[1:]))
        _solve_blocks_given_lhs(factors[-1], target,
                                _materialize_chain(factors[:-1]))


def fit_fast_dict(dictionary, *, rc: float = 0.25, levels: int = 2,
                  iters: int = 10, seed=None) -> FastDict:
    """Fit ``D ≈ S₁…S_J`` with ``nnz(S₁…S_J) ≈ rc·M·L``.

    Greedy hierarchical splits: at each level the current remainder
    ``T`` is factored as ``T ≈ F·G`` with ``F`` block-diagonal-times-
    permutation (exactly solvable per block) and ``G`` dense; the last
    remainder is projected onto the final block factor.  For
    ``levels == 2`` a global alternating polish refines both factors
    against the original ``D``.

    Parameters
    ----------
    dictionary:
        A dense :class:`~repro.core.dictionary.Dictionary` (or a bare
        ``(M, L)`` array).
    rc:
        Relative-complexity budget in (0, 1] — the modeled apply
        speedup is ``1/rc``.
    levels:
        Number of factors J ≥ 2.  More levels allow asymptotically
        lower RC at equal error on structured dictionaries, at the
        price of a harder (purely hierarchical) fit.
    seed:
        Seeds the randomised range-finder initialisation; same seed,
        same factorisation.

    Returns
    -------
    FastDict
        With ``residual = ‖D − Ŝ‖_F/‖D‖_F`` recorded.
    """
    cfg = FastDictConfig(rc=rc, levels=levels, iters=iters)
    atoms = getattr(dictionary, "atoms", None)
    if atoms is None:
        atoms = np.asarray(dictionary, dtype=np.float64)
        indices = np.arange(atoms.shape[1], dtype=np.int64)
    else:
        atoms = np.asarray(atoms, dtype=np.float64)
        indices = dictionary.indices
    if atoms.ndim != 2 or atoms.shape[0] < 2 or atoms.shape[1] < 2:
        raise ValidationError(
            f"fit_fast_dict needs a 2-D dictionary, got shape {atoms.shape}")
    m, l = atoms.shape
    k = min(m, l)
    dims = [m] + [k] * (cfg.levels - 1) + [l]
    budget = cfg.rc * m * l / cfg.levels
    rng = as_generator(seed)

    factors = []
    remainder = atoms
    for j in range(cfg.levels - 1):
        factor, remainder = _split_two(remainder, dims[j], dims[j + 1],
                                       budget, rng, cfg.iters, first=(j == 0))
        factors.append(factor)
    factors.append(_final_factor(remainder, dims[-2], dims[-1], budget))
    _polish_chain(atoms, factors, cfg.iters)

    fd = FastDict(factors, indices=indices)
    fd.residual = relative_frobenius_error(atoms, fd.atoms)
    return fd

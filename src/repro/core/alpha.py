"""The density function α(L) = nnz(C)/N and its subset estimator.

Sec. VII's key enabler: for union-of-subspaces data, the *expected*
per-column density of the ExD code is invariant under random column
subsampling — ``E[α(L, A_s, ε)] = E[α(L, A, ε)]`` — so the curve can be
characterised from small nested subsets ``A₁ ⊂ A₂ ⊂ …`` instead of the
full matrix (Figs. 4 and 6).

All estimators accept a ``workers`` knob: the independent
``(size, trial)`` ExD runs are farmed out to the fork pool of
:mod:`repro.linalg.parallel_omp` (embarrassingly parallel), and when
there is only a single run to perform the workers are spent inside it on
the column-parallel encode instead.  Either way every trial keeps its
serial seed derivation, so the reported α values are identical to the
serial path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.exd import exd_transform
from repro.errors import ValidationError
from repro.linalg.parallel_omp import fork_map, resolve_workers
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_fraction, check_positive_int


@dataclass
class AlphaEstimate:
    """α(L) measurements for one dictionary size.

    ``values`` holds one α per random-dictionary trial; ``errors`` the
    corresponding measured transformation errors; ``feasible`` whether
    every trial met the ε criterion on every column.
    """

    size: int
    values: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    feasible: bool = True

    @property
    def mean(self) -> float:
        """Mean α over trials (NaN when no trial ran)."""
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        """Std-dev of α over trials (the Fig. 4 variance bars)."""
        return float(np.std(self.values)) if self.values else float("nan")

    @property
    def mean_error(self) -> float:
        """Mean measured transformation error over trials."""
        return float(np.mean(self.errors)) if self.errors else float("nan")


def _alpha_task(shared, payload):
    """One independent ExD trial (fork-pool worker body)."""
    a, eps, compute_error = shared
    size, seed = payload
    transform, stats = exd_transform(a, size, eps, seed=seed)
    err = transform.transformation_error(a) if compute_error else None
    return transform.alpha, err, stats.all_converged


def _run_alpha_tasks(a, payloads, eps, *, compute_error, workers):
    """Run ``(size, seed)`` ExD trials, parallel across trials.

    With a single task the workers are redirected into the trial's own
    column-parallel encode; results always come back in payload order.
    """
    nworkers = resolve_workers(workers)
    obs.inc("alpha.trials", len(payloads))
    with obs.span("alpha.trials"):
        if len(payloads) == 1 and nworkers > 1:
            size, seed = payloads[0]
            transform, stats = exd_transform(a, size, eps, seed=seed,
                                             workers=workers)
            err = (transform.transformation_error(a) if compute_error
                   else None)
            return [(transform.alpha, err, stats.all_converged)]
        return fork_map(_alpha_task, payloads, (a, eps, compute_error),
                        nworkers)


def _collect(est: AlphaEstimate, results) -> AlphaEstimate:
    for alpha, err, ok in results:
        est.values.append(alpha)
        if err is not None:
            est.errors.append(err)
        if not ok:
            est.feasible = False
    return est


def measure_alpha(a, size: int, eps: float, *, trials: int = 1,
                  seed=None, compute_error: bool = False,
                  workers: int | None = None) -> AlphaEstimate:
    """Run ExD ``trials`` times with independent dictionaries; report α.

    ``compute_error=False`` skips the dense reconstruction (which costs
    O(M·N·L)); the per-column OMP residuals already guarantee the bound.
    ``workers`` parallelises across trials (or inside the encode when
    ``trials == 1``); the measured values match the serial path exactly.
    ``a`` may be a :class:`~repro.store.ColumnStore` — each trial then
    streams the encode and the α values match the in-memory ones
    bit-for-bit.
    """
    from repro.store.column_store import check_matrix_or_store

    a = check_matrix_or_store(a, "A")
    size = check_positive_int(size, "size")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    trials = check_positive_int(trials, "trials")
    payloads = [(size, derive_seed(seed, t, size)) for t in range(trials)]
    results = _run_alpha_tasks(a, payloads, eps,
                               compute_error=compute_error,
                               workers=workers)
    return _collect(AlphaEstimate(size=size), results)


def alpha_curve(a, sizes, eps: float, *, trials: int = 1, seed=None,
                compute_error: bool = False,
                workers: int | None = None) -> list[AlphaEstimate]:
    """α(L) over a sweep of dictionary sizes (Fig. 4 / Fig. 5 series).

    The ``len(sizes) × trials`` ExD runs are independent and are
    parallelised jointly when ``workers`` is set.
    """
    from repro.store.column_store import check_matrix_or_store

    a = check_matrix_or_store(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    trials = check_positive_int(trials, "trials")
    sizes = [check_positive_int(s, "size") for s in sizes]
    payloads = [(s, derive_seed(seed, t, s))
                for s in sizes for t in range(trials)]
    results = _run_alpha_tasks(a, payloads, eps,
                               compute_error=compute_error,
                               workers=workers)
    out = []
    for i, s in enumerate(sizes):
        est = AlphaEstimate(size=s)
        _collect(est, results[i * trials:(i + 1) * trials])
        out.append(est)
    return out


@dataclass
class SubsetAlphaEstimate:
    """Result of the nested-subset estimation of Sec. VII."""

    subset_sizes: list
    curves: dict          # subset size -> {L: alpha}
    converged: bool       # discrepancy threshold met before full data
    final_alpha: dict     # L -> alpha from the largest subset used

    def discrepancy(self, n_small: int, n_big: int) -> float:
        """Max relative α difference between two subset curves."""
        small, big = self.curves[n_small], self.curves[n_big]
        rel = [abs(small[l] - big[l]) / max(big[l], 1e-12) for l in big]
        return float(max(rel))


def _plan_subset_sizes(fracs, n: int, max_l: int) -> list[int]:
    """Distinct, increasing subset sizes in ``[max_l + 1, n]``.

    Every subset must exceed ``max_l`` columns (a dictionary of L atoms
    needs more than L columns to sample from), which for small ``N`` can
    clamp several fractions onto one size.  The discrepancy test of
    Sec. VII needs at least *two* distinct sizes, so when the clamp
    collapses the plan and room remains, a second larger subset is
    added; when ``N`` itself leaves no room, the single-subset plan is
    returned and the caller warns.
    """
    lo = min(max_l + 1, n)
    plan: list[int] = []
    for frac in fracs:
        n_s = min(max(int(round(frac * n)), lo), n)
        if not plan or n_s > plan[-1]:
            plan.append(n_s)
    if len(plan) < 2 and plan[-1] < n:
        plan.append(min(n, max(2 * plan[-1], plan[-1] + 1)))
    return plan


def estimate_alpha_from_subsets(a, sizes, eps: float, *,
                                subset_fractions=(0.05, 0.1, 0.2, 0.4),
                                threshold: float = 0.1, seed=None,
                                trials: int = 1,
                                workers: int | None = None) \
        -> SubsetAlphaEstimate:
    """Estimate α(L) from growing random subsets of ``A``.

    Runs ExD on nested subsets ``A₁ ⊂ A₂ ⊂ …`` (fractions of N) and
    stops as soon as consecutive curves agree within ``threshold``
    relative discrepancy — the low-overhead tuning protocol of Sec. VII.
    At least two distinct subset sizes are used whenever ``N`` permits;
    if it does not, a single-subset estimate is returned with
    ``converged=False`` and an explicit :class:`UserWarning` (the
    discrepancy cross-validation never ran).

    The subset loop stays sequential (early stopping feeds on the
    previous curve), but the ``sizes × trials`` runs within each subset
    are parallelised when ``workers`` is set.  With a
    :class:`~repro.store.ColumnStore` input only the sampled subset
    columns are ever read from disk — the full matrix is not.
    """
    from repro.store.column_store import check_matrix_or_store, take_columns

    a = check_matrix_or_store(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    sizes = [check_positive_int(s, "size") for s in sizes]
    if not subset_fractions:
        raise ValidationError("subset_fractions must be non-empty")
    fracs = sorted(float(f) for f in subset_fractions)
    if fracs[0] <= 0 or fracs[-1] > 1:
        raise ValidationError(
            f"subset fractions must lie in (0, 1], got {subset_fractions}")
    n = a.shape[1]
    rng = as_generator(seed)
    order = rng.permutation(n)  # one permutation → properly nested subsets
    subset_sizes: list[int] = []
    curves: dict[int, dict[int, float]] = {}
    converged = False
    max_l = max(sizes)
    plan = _plan_subset_sizes(fracs, n, max_l)
    if len(plan) < 2:
        warnings.warn(
            f"estimate_alpha_from_subsets: N={n} admits only one subset "
            f"of more than max(sizes)={max_l} columns; returning a "
            f"single-subset estimate without discrepancy "
            f"cross-validation (converged=False)", UserWarning,
            stacklevel=2)
    prev_n = None
    for n_s in plan:
        sub = take_columns(a, order[:n_s])
        # Seeds replicate the serial nesting measure_alpha would use.
        payloads = [(l, derive_seed(derive_seed(seed, n_s, l), t, l))
                    for l in sizes for t in range(trials)]
        results = _run_alpha_tasks(sub, payloads, eps,
                                   compute_error=False, workers=workers)
        curve = {}
        for i, l in enumerate(sizes):
            est = AlphaEstimate(size=l)
            _collect(est, results[i * trials:(i + 1) * trials])
            curve[l] = est.mean
        subset_sizes.append(n_s)
        curves[n_s] = curve
        if prev_n is not None:
            rel = max(abs(curves[prev_n][l] - curve[l]) /
                      max(curve[l], 1e-12) for l in sizes)
            if rel <= threshold:
                converged = True
                break
        prev_n = n_s
    final = curves[subset_sizes[-1]]
    return SubsetAlphaEstimate(subset_sizes=subset_sizes, curves=curves,
                               converged=converged, final_alpha=dict(final))

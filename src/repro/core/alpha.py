"""The density function α(L) = nnz(C)/N and its subset estimator.

Sec. VII's key enabler: for union-of-subspaces data, the *expected*
per-column density of the ExD code is invariant under random column
subsampling — ``E[α(L, A_s, ε)] = E[α(L, A, ε)]`` — so the curve can be
characterised from small nested subsets ``A₁ ⊂ A₂ ⊂ …`` instead of the
full matrix (Figs. 4 and 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exd import exd_transform
from repro.errors import ValidationError
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_fraction, check_matrix, check_positive_int


@dataclass
class AlphaEstimate:
    """α(L) measurements for one dictionary size.

    ``values`` holds one α per random-dictionary trial; ``errors`` the
    corresponding measured transformation errors; ``feasible`` whether
    every trial met the ε criterion on every column.
    """

    size: int
    values: list = field(default_factory=list)
    errors: list = field(default_factory=list)
    feasible: bool = True

    @property
    def mean(self) -> float:
        """Mean α over trials (NaN when no trial ran)."""
        return float(np.mean(self.values)) if self.values else float("nan")

    @property
    def std(self) -> float:
        """Std-dev of α over trials (the Fig. 4 variance bars)."""
        return float(np.std(self.values)) if self.values else float("nan")

    @property
    def mean_error(self) -> float:
        """Mean measured transformation error over trials."""
        return float(np.mean(self.errors)) if self.errors else float("nan")


def measure_alpha(a, size: int, eps: float, *, trials: int = 1,
                  seed=None, compute_error: bool = False) -> AlphaEstimate:
    """Run ExD ``trials`` times with independent dictionaries; report α.

    ``compute_error=False`` skips the dense reconstruction (which costs
    O(M·N·L)); the per-column OMP residuals already guarantee the bound.
    """
    a = check_matrix(a, "A")
    size = check_positive_int(size, "size")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    trials = check_positive_int(trials, "trials")
    est = AlphaEstimate(size=size)
    for t in range(trials):
        transform, stats = exd_transform(
            a, size, eps, seed=derive_seed(seed, t, size))
        est.values.append(transform.alpha)
        if compute_error:
            est.errors.append(transform.transformation_error(a))
        if not stats.all_converged:
            est.feasible = False
    return est


def alpha_curve(a, sizes, eps: float, *, trials: int = 1, seed=None,
                compute_error: bool = False) -> list[AlphaEstimate]:
    """α(L) over a sweep of dictionary sizes (Fig. 4 / Fig. 5 series)."""
    sizes = [check_positive_int(s, "size") for s in sizes]
    return [measure_alpha(a, s, eps, trials=trials, seed=seed,
                          compute_error=compute_error)
            for s in sizes]


@dataclass
class SubsetAlphaEstimate:
    """Result of the nested-subset estimation of Sec. VII."""

    subset_sizes: list
    curves: dict          # subset size -> {L: alpha}
    converged: bool       # discrepancy threshold met before full data
    final_alpha: dict     # L -> alpha from the largest subset used

    def discrepancy(self, n_small: int, n_big: int) -> float:
        """Max relative α difference between two subset curves."""
        small, big = self.curves[n_small], self.curves[n_big]
        rel = [abs(small[l] - big[l]) / max(big[l], 1e-12) for l in big]
        return float(max(rel))


def estimate_alpha_from_subsets(a, sizes, eps: float, *,
                                subset_fractions=(0.05, 0.1, 0.2, 0.4),
                                threshold: float = 0.1, seed=None,
                                trials: int = 1) -> SubsetAlphaEstimate:
    """Estimate α(L) from growing random subsets of ``A``.

    Runs ExD on nested subsets ``A₁ ⊂ A₂ ⊂ …`` (fractions of N) and
    stops as soon as consecutive curves agree within ``threshold``
    relative discrepancy — the low-overhead tuning protocol of Sec. VII.
    """
    a = check_matrix(a, "A")
    eps = check_fraction(eps, "eps", inclusive_low=True)
    sizes = [check_positive_int(s, "size") for s in sizes]
    if not subset_fractions:
        raise ValidationError("subset_fractions must be non-empty")
    fracs = sorted(float(f) for f in subset_fractions)
    if fracs[0] <= 0 or fracs[-1] > 1:
        raise ValidationError(
            f"subset fractions must lie in (0, 1], got {subset_fractions}")
    n = a.shape[1]
    rng = as_generator(seed)
    order = rng.permutation(n)  # one permutation → properly nested subsets
    subset_sizes: list[int] = []
    curves: dict[int, dict[int, float]] = {}
    converged = False
    max_l = max(sizes)
    prev_n = None
    for frac in fracs:
        n_s = max(int(round(frac * n)), max_l + 1)
        n_s = min(n_s, n)
        if subset_sizes and n_s <= subset_sizes[-1]:
            continue
        sub = a[:, order[:n_s]]
        curve = {}
        for l in sizes:
            est = measure_alpha(sub, l, eps, trials=trials,
                                seed=derive_seed(seed, n_s, l))
            curve[l] = est.mean
        subset_sizes.append(n_s)
        curves[n_s] = curve
        if prev_n is not None:
            rel = max(abs(curves[prev_n][l] - curve[l]) /
                      max(curve[l], 1e-12) for l in sizes)
            if rel <= threshold:
                converged = True
                break
        prev_n = n_s
    final = curves[subset_sizes[-1]]
    return SubsetAlphaEstimate(subset_sizes=subset_sizes, curves=curves,
                               converged=converged, final_alpha=dict(final))

"""The end-to-end ExtDict API (paper Fig. 1).

Usage mirrors the paper's API: the user supplies the dataset ``A``, the
transformation error ε and the learning algorithm as an iterative update
on the Gram matrix; the framework measures the platform's ``R_bf``,
tunes the ExD parameters, transforms the data, and executes the
algorithm distributed.

>>> from repro.core import ExtDict
>>> from repro.platform import platform_by_name
>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> basis = rng.standard_normal((32, 3))
>>> a = basis @ rng.standard_normal((3, 200))
>>> ext = ExtDict(eps=0.05, cluster=platform_by_name("1x4"), seed=1)
>>> ext = ext.fit(a)
>>> ext.transform_.transformation_error(a) <= 0.05 + 1e-9
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.core.cost_model import CostModel
from repro.core.evolve import extend_transform
from repro.core.exd import exd_transform, exd_transform_distributed
from repro.core.gram import TransformedGramOperator, run_distributed_gram
from repro.core.tuner import tune_dictionary_size
from repro.errors import ReproError, ValidationError
from repro.utils.timer import Timer
from repro.utils.validation import check_fraction, check_in


@dataclass
class PreprocessingReport:
    """Wall-clock and simulated overheads of fit() (Table II)."""

    tuning_seconds: float = 0.0
    transform_seconds: float = 0.0
    simulated_transform_seconds: float = 0.0
    tuned_size: int = 0
    tuning_table: list = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Tuning + transformation wall-clock."""
        return self.tuning_seconds + self.transform_seconds


class ExtDict:
    """Data- and platform-aware transform + execution framework.

    Parameters
    ----------
    eps:
        Transformation error tolerance (Eq. 1).
    cluster:
        Target :class:`~repro.platform.cluster.ClusterConfig`.  ``None``
        runs everything serially (still platform-aware through an
        explicit ``cost_model`` if given).
    objective:
        Tuning objective: "time", "energy" or "memory".
    size:
        Fix the dictionary size L instead of tuning it.
    subset_fraction:
        Fraction of columns the tuner's α estimation may touch.
    distributed_preprocess:
        Run Algorithm 1 itself through the MPI emulator so its simulated
        cost is recorded (slower on the host; default off).
    workers:
        Host-side worker count for the preprocessing hot path (tuning
        trials and the Batch-OMP encode); ``None`` = serial, ``-1`` =
        all cores.  Results are identical for every value.
    memory_budget_bytes, block_width, checkpoint_dir:
        Out-of-core knobs used when ``fit`` receives a
        :class:`~repro.store.ColumnStore` (see
        :class:`~repro.store.StreamingEncoder`); ignored for in-memory
        input.
    fast_dict:
        Learn a sparse-factor fast transform of the sampled dictionary
        (:mod:`repro.core.fastdict`): a float is the relative-complexity
        budget ``RC``, or pass a
        :class:`~repro.core.fastdict.FastDictConfig`.  Applies to both
        in-memory and store-backed fits; incompatible with
        ``distributed_preprocess`` (the SPMD encode shares the dense
        sample across ranks).
    """

    def __init__(self, eps: float = 0.1, *, cluster=None,
                 objective: str = "time", size: int | None = None,
                 candidates=None, subset_fraction: float = 0.25,
                 seed=None, distributed_preprocess: bool = False,
                 workers: int | None = None,
                 memory_budget_bytes: int | None = None,
                 block_width: int | None = None,
                 checkpoint_dir=None,
                 fast_dict=None) -> None:
        self.eps = check_fraction(eps, "eps", inclusive_low=True)
        self.cluster = cluster
        self.objective = check_in(objective, "objective",
                                  ("time", "energy", "memory"))
        self.size = size
        self.candidates = candidates
        self.subset_fraction = subset_fraction
        self.seed = seed
        self.distributed_preprocess = distributed_preprocess
        self.workers = workers
        self.memory_budget_bytes = memory_budget_bytes
        self.block_width = block_width
        self.checkpoint_dir = checkpoint_dir
        if fast_dict is not None:
            from repro.core.fastdict import as_fast_dict_config

            if distributed_preprocess:
                raise ValidationError(
                    "fast_dict cannot be combined with "
                    "distributed_preprocess: the SPMD encode shares the "
                    "dense sampled dictionary across ranks")
            fast_dict = as_fast_dict_config(fast_dict)
        self.fast_dict = fast_dict
        self.cost_model = CostModel(cluster) if cluster is not None else None
        self.transform_ = None
        self.stats_ = None
        self.report_ = None

    # ------------------------------------------------------------------
    @classmethod
    def from_store(cls, path, **kwargs) -> "ExtDict":
        """Open a :class:`~repro.store.ColumnStore` and fit on it.

        The whole pipeline — tuning (subset reads), the streamed encode,
        and later :meth:`evolve` calls — runs without ever materialising
        the full matrix; ``kwargs`` are the constructor's.
        """
        from repro.store import ColumnStore

        return cls(**kwargs).fit(ColumnStore.open(path))

    def fit(self, a, *, resume: bool = False) -> "ExtDict":
        """Tune L (unless fixed), then transform ``A`` into ``(D, C)``.

        ``a`` may be a :class:`~repro.store.ColumnStore`; the transform
        is then streamed from disk (bit-identical to the dense path) and
        ``resume=True`` continues a checkpointed encode.
        """
        from repro.store.column_store import check_matrix_or_store, is_column_store

        a = check_matrix_or_store(a, "A")
        streamed = is_column_store(a)
        if streamed and self.distributed_preprocess:
            raise ValidationError(
                "distributed_preprocess needs an in-memory matrix; "
                "store-backed fits stream the encode on the host")
        stream_kwargs = {}
        if streamed:
            stream_kwargs = {
                "memory_budget_bytes": self.memory_budget_bytes,
                "block_width": self.block_width,
                "checkpoint_dir": self.checkpoint_dir,
                "resume": resume,
            }
        report = PreprocessingReport()
        size = self.size
        with obs.span("extdict.fit"):
            if size is None:
                if self.cost_model is None:
                    raise ValidationError(
                        "automatic tuning needs a cluster (or pass size=...)")
                t = Timer()
                with t, obs.span("extdict.tune"):
                    tuning = tune_dictionary_size(
                        a, self.eps, self.cost_model,
                        objective=self.objective,
                        candidates=self.candidates,
                        subset_fraction=self.subset_fraction,
                        seed=self.seed, workers=self.workers)
                size = tuning.best_size
                report.tuning_seconds = t.elapsed
                report.tuning_table = tuning.table
            report.tuned_size = size

            t = Timer()
            with t, obs.span("extdict.transform"):
                if self.distributed_preprocess and self.cluster is not None:
                    transform, stats, spmd = exd_transform_distributed(
                        a, size, self.eps, self.cluster, seed=self.seed,
                        workers=self.workers)
                    report.simulated_transform_seconds = spmd.simulated_time
                else:
                    transform, stats = exd_transform(
                        a, size, self.eps, seed=self.seed,
                        workers=self.workers, fast_dict=self.fast_dict,
                        **stream_kwargs)
            report.transform_seconds = t.elapsed
        self.transform_ = transform
        self.stats_ = stats
        self.report_ = report
        return self

    def _require_fit(self):
        if self.transform_ is None:
            raise ReproError("call fit(A) before using the framework")
        return self.transform_

    # ------------------------------------------------------------------
    # Gram access
    # ------------------------------------------------------------------
    def gram_operator(self) -> TransformedGramOperator:
        """Serial ``x -> (DC)ᵀDC x`` operator on the fitted transform."""
        return TransformedGramOperator(self._require_fit())

    def gram_apply_distributed(self, x, *, iterations: int = 1,
                               normalize: bool = False):
        """Algorithm 2 on the configured cluster; returns (y, SPMDResult)."""
        if self.cluster is None:
            raise ValidationError("no cluster configured")
        return run_distributed_gram(self._require_fit(), x, self.cluster,
                                    iterations=iterations,
                                    normalize=normalize)

    # ------------------------------------------------------------------
    # learning algorithms on the transformed data
    # ------------------------------------------------------------------
    def lasso(self, y, lam: float, **kwargs):
        """Solve ``min_x ‖Ax − y‖² + λ‖x‖₁`` on the transformed Gram."""
        from repro.solvers.lasso import lasso_gd
        transform = self._require_fit()
        op = TransformedGramOperator(transform)
        aty = transform.project_adjoint(np.asarray(y, dtype=np.float64))
        return lasso_gd(op, aty, transform.n, lam, **kwargs)

    def ridge(self, y, lam: float, **kwargs):
        """Solve ``min_x ‖Ax − y‖² + λ‖x‖₂²`` on the transformed Gram."""
        from repro.solvers.ridge import ridge_gd
        transform = self._require_fit()
        op = TransformedGramOperator(transform)
        aty = transform.project_adjoint(np.asarray(y, dtype=np.float64))
        return ridge_gd(op, aty, transform.n, lam, **kwargs)

    def elastic_net(self, y, lam1: float, lam2: float, **kwargs):
        """Solve the elastic net on the transformed Gram."""
        from repro.solvers.elastic_net import elastic_net_gd
        transform = self._require_fit()
        op = TransformedGramOperator(transform)
        aty = transform.project_adjoint(np.asarray(y, dtype=np.float64))
        return elastic_net_gd(op, aty, transform.n, lam1, lam2, **kwargs)

    def power_method(self, k: int = 10, **kwargs):
        """Top-k eigenvalues of ``AᵀA`` via the transformed Gram."""
        from repro.linalg.power_iteration import top_eigenpairs
        transform = self._require_fit()
        op = TransformedGramOperator(transform)
        return top_eigenpairs(op, transform.n, k, **kwargs)

    def sparse_pca(self, n_components: int, sparsity: int, **kwargs):
        """k-sparse principal components via the truncated Power method."""
        from repro.solvers.sparse_pca import sparse_principal_components
        transform = self._require_fit()
        op = TransformedGramOperator(transform)
        return sparse_principal_components(op, transform.n, n_components,
                                           sparsity, **kwargs)

    # ------------------------------------------------------------------
    def update(self, a_new) -> "ExtDict":
        """Evolving-data update: fold new columns into the transform.

        ``a_new`` may be a dense block or a
        :class:`~repro.store.ColumnStore` of the new columns (streamed
        from disk, bit-identical to the dense path).
        """
        result = extend_transform(self._require_fit(), a_new,
                                  seed=self.seed, workers=self.workers)
        self.transform_ = result.transform
        return self

    def evolve(self, a_new) -> "ExtDict":
        """Alias of :meth:`update` matching the paper's evolving-data
        terminology (Sec. V-E)."""
        return self.update(a_new)

    def maintain(self, a=None, *, config=None, curve=None):
        """Build an :class:`~repro.online.OnlineMaintainer` on the fit.

        Where :meth:`evolve` only *grows* the transform, the maintainer
        keeps the fitted atoms healthy under drifting data: per-atom
        usage statistics, Mensch/Mairal minibatch atom refresh,
        dead-atom eviction/re-seeding, and a drift trigger against the
        tuner's fitted α(L) curve (the last fit's tuning table is used
        automatically when available; pass ``curve`` to override).

        ``a`` is the data source to maintain against — a
        :class:`~repro.store.ColumnStore` or dense matrix; it defaults
        to nothing and is required (the fit may have consumed a
        temporary subset).  Returns the maintainer; drive it with
        ``step()``/``run()`` and publish snapshots with
        ``build_generation()``.
        """
        from repro.online.maintainer import OnlineMaintainer

        transform = self._require_fit()
        if a is None:
            raise ValidationError(
                "maintain(a) needs the data source (ColumnStore or "
                "matrix) the traffic comes from")
        if curve is None and self.report_ is not None \
                and len(self.report_.tuning_table) >= 2:
            from repro.online.drift import fit_alpha_curve

            curve = fit_alpha_curve(self.report_.tuning_table)
        return OnlineMaintainer(a, transform, curve=curve, config=config,
                                seed=self.seed, workers=self.workers)

    def preprocessing_report(self) -> PreprocessingReport:
        """Tuning/transformation overheads of the last fit (Table II)."""
        self._require_fit()
        return self.report_

"""The paper's primary contribution: ExD transformation, distributed Gram
computation (Alg. 2), the performance model (Eqs. 2–4), the α(L)
estimator, the automated tuner (Sec. VII), evolving-data updates
(Sec. V-E) and the end-to-end :class:`ExtDict` framework API.
"""

from repro.core.dictionary import DictOperator, Dictionary, sample_dictionary
from repro.core.fastdict import (
    BlockDictOperator,
    FastDict,
    FastDictConfig,
    FastFactor,
    fit_fast_dict,
)
from repro.core.transform import TransformedData
from repro.core.exd import ExDStats, exd_transform, exd_transform_distributed
from repro.core.gram import (
    LocalGramWorker,
    TransformedGramOperator,
    gram_update_program,
    run_distributed_gram,
    select_case,
)
from repro.core.cost_model import (
    CostModel,
    runtime_cost,
    energy_cost,
    memory_cost_per_node,
    dense_runtime_cost,
    dense_memory_per_node,
)
from repro.core.alpha import AlphaEstimate, measure_alpha, alpha_curve, estimate_alpha_from_subsets
from repro.core.tuner import (
    FastTuningResult,
    TuningResult,
    find_min_feasible_size,
    tune_dictionary_size,
    tune_dictionary_size_distributed,
    tune_fast_dictionary,
)
from repro.core.evolve import ExtendResult, extend_transform, extend_transform_distributed
from repro.core.framework import ExtDict
from repro.core.io import load_transform, save_transform
from repro.online.sketch import (
    SketchConfig,
    SketchedTuningResult,
    tune_dictionary_size_sketched,
)

__all__ = [
    "DictOperator",
    "Dictionary",
    "sample_dictionary",
    "BlockDictOperator",
    "FastDict",
    "FastDictConfig",
    "FastFactor",
    "fit_fast_dict",
    "TransformedData",
    "ExDStats",
    "exd_transform",
    "exd_transform_distributed",
    "LocalGramWorker",
    "TransformedGramOperator",
    "gram_update_program",
    "run_distributed_gram",
    "select_case",
    "CostModel",
    "runtime_cost",
    "energy_cost",
    "memory_cost_per_node",
    "dense_runtime_cost",
    "dense_memory_per_node",
    "AlphaEstimate",
    "measure_alpha",
    "alpha_curve",
    "estimate_alpha_from_subsets",
    "TuningResult",
    "FastTuningResult",
    "SketchConfig",
    "SketchedTuningResult",
    "tune_dictionary_size",
    "tune_dictionary_size_distributed",
    "tune_dictionary_size_sketched",
    "tune_fast_dictionary",
    "find_min_feasible_size",
    "ExtendResult",
    "extend_transform",
    "extend_transform_distributed",
    "ExtDict",
    "load_transform",
    "save_transform",
]

"""Algorithm 2 — distributed Gram-matrix multiplication on ``DC``.

Computes ``CᵀDᵀDC x ≈ AᵀA x`` with column-partitioned ``C`` and a
case split on the dictionary size:

Case 1 (``L ≤ M``)
    ``D`` lives on processor 0 only.  Local partial products
    ``v¹_i = C_i x_i`` (length L) are *reduced* to rank 0, which applies
    ``DᵀD`` and *broadcasts* the L-vector back: 2·L words on the
    critical path.

Case 2 (``L > M``)
    ``D`` is replicated.  Each rank computes ``v²_i = D v¹_i`` (length
    M); the M-vectors are reduced and broadcast, and every rank applies
    ``Dᵀ`` redundantly: 2·M words on the critical path.

Either way the per-iteration communication is ``2·min(M, L)`` words —
the paper's ``Ω(d₁·d₂) = min(M, L)`` lower bound up to the reduce+bcast
constant.  FLOPs follow Sec. VI-B: ``M·L + nnz(C)`` multiplications
(divided over P), which the kernels bill to the virtual clocks exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.transform import TransformedData
from repro.errors import ValidationError
from repro.sparse.csc import CSCMatrix
from repro.sparse.ops import (
    counted_dense_matvec,
    counted_dense_rmatvec,
    counted_matvec,
    counted_rmatvec,
)


def select_case(m: int, l: int) -> int:
    """Paper's case split: 1 when ``L ≤ M`` (root-held D), else 2."""
    if m < 1 or l < 1:
        raise ValidationError(f"M and L must be >= 1, got {m}, {l}")
    return 1 if l <= m else 2


class TransformedGramOperator:
    """Serial ``x -> CᵀDᵀDC x`` operator with FLOP accounting.

    Precomputes ``DᵀD`` when ``L ≤ M`` so each application costs
    ``2·nnz(C) + L²`` multiplies instead of two dense M×L products —
    mirroring what rank 0 does in Case 1.
    """

    def __init__(self, transform: TransformedData,
                 *, precompute_gram: bool | None = None) -> None:
        self.transform = transform
        self.flops = 0
        if precompute_gram is None:
            precompute_gram = transform.l <= transform.m
        self._gram = (transform.dictionary.gram()
                      if precompute_gram else None)

    @property
    def n(self) -> int:
        """Operand length (number of data columns)."""
        return self.transform.n

    def __call__(self, x: np.ndarray) -> np.ndarray:
        c = self.transform.coefficients
        dic = self.transform.dictionary
        v1, f1 = counted_matvec(c, np.asarray(x, dtype=np.float64))
        if self._gram is not None:
            v3 = self._gram @ v1
            l = self._gram.shape[0]
            self.flops += f1.total + 2 * l * l
        else:
            # Case-2 shape: apply D and Dᵀ through the dictionary
            # operator, charging its actual transform cost — for a
            # dense dictionary, transform_nnz = M·L reproduces the
            # counted_dense_matvec/rmatvec totals exactly; a factored
            # dictionary is billed (and pays) Σⱼ nnz(Sⱼ) instead.
            m, l = dic.m, dic.size
            tnnz = dic.transform_nnz
            v2 = dic.apply(v1)
            v3 = dic.apply_t(v2)
            self.flops += f1.total + (2 * tnnz - m) + (2 * tnnz - l)
        out, f4 = counted_rmatvec(c, v3)
        self.flops += f4.total
        return out


def _partition(n: int, p: int, rank: int) -> tuple[int, int]:
    """Column range owned by ``rank`` (balanced contiguous blocks)."""
    return rank * n // p, (rank + 1) * n // p


class LocalGramWorker:
    """Per-rank state and one-update logic of Algorithm 2.

    Owns the local column block ``C_i`` (and ``DᵀD`` on rank 0 in
    Case 1); :meth:`apply` performs one distributed Gram update,
    charging FLOPs and issuing the reduce/broadcast through ``comm``.
    Reused by the iterative solvers (LASSO, Power method) so that every
    algorithm shares the identical communication schedule.
    """

    def __init__(self, comm, d: np.ndarray, c: CSCMatrix) -> None:
        self.comm = comm
        self.d = np.asarray(d, dtype=np.float64)
        m, l = self.d.shape
        n = c.shape[1]
        self.case = select_case(m, l)
        self.lo, self.hi = _partition(n, comm.Get_size(), comm.Get_rank())
        self.c_i = c.slice_columns(self.lo, self.hi)
        self.gram = (self.d.T @ self.d
                     if (self.case == 1 and comm.Get_rank() == 0) else None)

    @property
    def local_n(self) -> int:
        """Number of columns this rank owns."""
        return self.hi - self.lo

    def slice_local(self, x: np.ndarray) -> np.ndarray:
        """Extract this rank's block of a full-length vector."""
        return np.asarray(x[self.lo:self.hi], dtype=np.float64).copy()

    def apply(self, x_i: np.ndarray) -> np.ndarray:
        """One Gram update: local block in, local block out."""
        comm, d, l = self.comm, self.d, self.d.shape[1]
        # Step 1: local sparse product (nnz_i multiplies).
        v1_i, f1 = counted_matvec(self.c_i, x_i)
        comm.charge_flops(f1)
        if self.case == 2:
            # Steps 3-7 (Case 2): replicated D, reduce/bcast M-vectors.
            v2_i, f2 = counted_dense_matvec(d, v1_i)
            comm.charge_flops(f2)
            v = comm.reduce(v2_i, op="sum", root=0)
            v = comm.bcast(v, root=0)
            dtv, f3 = counted_dense_rmatvec(d, v)
            comm.charge_flops(f3)
            z_i, f4 = counted_rmatvec(self.c_i, dtv)
            comm.charge_flops(f4)
        else:
            # Steps 3-7 (Case 1): root applies DᵀD, L-vectors on the wire.
            v1 = comm.reduce(v1_i, op="sum", root=0)
            if comm.Get_rank() == 0:
                v3 = self.gram @ v1
                comm.charge_flops(2 * l * l)
            else:
                v3 = None
            v3 = comm.bcast(v3, root=0)
            z_i, f4 = counted_rmatvec(self.c_i, v3)
            comm.charge_flops(f4)
        return z_i

    def adjoint_data_apply(self, y: np.ndarray) -> np.ndarray:
        """Local block of ``(DC)ᵀ y`` (used once to form ``Aᵀy``).

        ``y`` (length M) is assumed available everywhere (a one-time
        broadcast the solvers charge separately).
        """
        dty, f = counted_dense_rmatvec(self.d, np.asarray(y, np.float64))
        self.comm.charge_flops(f)
        out, f2 = counted_rmatvec(self.c_i, dty)
        self.comm.charge_flops(f2)
        return out


def gram_update_program(comm, d: np.ndarray, c: CSCMatrix, x: np.ndarray,
                        iterations: int = 1, *, normalize: bool = False):
    """Rank program: ``iterations`` Gram updates of Algorithm 2.

    Every rank slices its own column block of ``C`` and ``x`` (the
    emulator's analogue of step 0's "pid=i loads C_i / x_i"); the final
    full vector is assembled on rank 0 via a gather (not charged as part
    of the iteration loop, mirroring how the paper measures per-update
    time).

    With ``normalize=True`` each iterate is scaled by the global norm of
    the result (the Power-method update).
    """
    worker = LocalGramWorker(comm, d, c)
    x_i = worker.slice_local(x)
    for _ in range(iterations):
        z_i = worker.apply(x_i)
        if normalize:
            norm_sq = comm.allreduce(float(z_i @ z_i), op="sum")
            norm = float(np.sqrt(norm_sq))
            if norm > 0:
                z_i = z_i / norm
        x_i = z_i
    blocks = comm.gather(x_i, root=0)
    if comm.Get_rank() == 0:
        return np.concatenate(blocks)
    return None


def run_distributed_gram(transform: TransformedData, x: np.ndarray,
                         cluster, *, iterations: int = 1,
                         normalize: bool = False):
    """Execute Algorithm 2 on the emulated cluster.

    Returns ``(result_vector, spmd_result)`` — the latter carries the
    simulated per-platform runtime/energy and the traffic ledger used by
    the Fig. 7/8 benchmarks.
    """
    from repro.mpi.runtime import run_spmd

    x = np.asarray(x, dtype=np.float64)
    if x.shape != (transform.n,):
        raise ValidationError(
            f"x must have shape ({transform.n},), got {x.shape}")
    result = run_spmd(0, gram_update_program, transform.dictionary.atoms,
                      transform.coefficients, x, iterations,
                      normalize=normalize, cluster=cluster)
    return result.returns[0], result

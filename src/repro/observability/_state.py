"""The process-wide on/off switch for the observability layer.

Kept in its own module so both :mod:`repro.observability.metrics` and
:mod:`repro.observability.spans` can check it without importing each
other.  The flag is read on every instrumented call site, so it is a
plain attribute on a slotted singleton — one attribute load when
disabled, no locks, no function-call indirection beyond the helper
itself.
"""

from __future__ import annotations


class ObservabilityState:
    """Mutable holder of the global enabled flag."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled: bool = False


#: The singleton read by every instrumented call site.
STATE = ObservabilityState()

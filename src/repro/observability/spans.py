"""Nested span-based tracing with near-zero overhead when disabled.

A span is a named timed region::

    with span("exd.transform"):
        ...

Spans nest: a span opened while another is active on the same thread is
recorded under the parent's path, joined with ``/`` (e.g.
``exd.transform/omp.encode``).  The nesting stack is thread-local — the
MPI emulator's rank threads each get their own stack, so a span opened
inside a rank program starts a fresh root path for that thread — while
the aggregated table is global and lock-protected, so all threads fold
into one report.

When observability is disabled :func:`span` returns a shared no-op
context manager: the disabled cost is one flag check plus an attribute
load, no allocation, no clock read.

Exceptions unwind cleanly: a span exited by an exception still records
its duration, increments its ``errors`` count, and pops the stack, so
the parent's path is intact for subsequent spans.
"""

from __future__ import annotations

import threading
import time

from repro.observability._state import STATE

__all__ = ["SpanRecorder", "SPANS", "current_span_path", "span"]

#: Separator between parent and child span names in an aggregated path.
PATH_SEP = "/"


class SpanRecorder:
    """Aggregates completed spans per path: count/total/min/max/errors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        # path -> [count, total_s, min_s, max_s, errors]
        self._table: dict[str, list[float]] = {}

    # -- per-thread stack ----------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_path(self) -> str:
        """Path of the innermost active span on this thread ('' if none)."""
        stack = self._stack()
        return stack[-1] if stack else ""

    # -- recording -----------------------------------------------------
    def push(self, name: str) -> str:
        stack = self._stack()
        path = stack[-1] + PATH_SEP + name if stack else name
        stack.append(path)
        return path

    def pop(self, path: str, duration: float, failed: bool) -> None:
        stack = self._stack()
        if stack and stack[-1] == path:
            stack.pop()
        with self._lock:
            entry = self._table.get(path)
            if entry is None:
                self._table[path] = [1, duration, duration, duration,
                                     1 if failed else 0]
            else:
                entry[0] += 1
                entry[1] += duration
                entry[2] = min(entry[2], duration)
                entry[3] = max(entry[3], duration)
                entry[4] += 1 if failed else 0

    # -- readers -------------------------------------------------------
    def snapshot(self) -> dict:
        """``{path: {count, total_s, min_s, max_s, errors}}`` copy."""
        with self._lock:
            return {
                path: {
                    "count": int(e[0]),
                    "total_s": e[1],
                    "min_s": e[2],
                    "max_s": e[3],
                    "errors": int(e[4]),
                }
                for path, e in sorted(self._table.items())
            }

    def reset(self) -> None:
        """Drop the aggregated table (active stacks are untouched)."""
        with self._lock:
            self._table.clear()


#: The process-wide recorder all spans report into.
SPANS = SpanRecorder()


class _Span:
    """Context manager for one live span (enabled path)."""

    __slots__ = ("name", "_path", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_Span":
        self._path = SPANS.push(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        SPANS.pop(self._path, time.perf_counter() - self._t0,
                  failed=exc_type is not None)
        return False


class _NullSpan:
    """Shared do-nothing context manager (disabled path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str):
    """Open a named span; a shared no-op when observability is off."""
    if not STATE.enabled:
        return _NULL_SPAN
    return _Span(name)


def current_span_path() -> str:
    """The calling thread's innermost active span path ('' when none)."""
    return SPANS.current_path()

"""Unified observability layer: metrics + spans + run reports.

Disabled by default; every instrumented call site costs one flag check
while off.  Enable explicitly (:func:`enable` / the :class:`observed`
context manager) or through the CLI's ``--metrics-json`` / ``--profile``
flags, then assemble everything with
:func:`~repro.observability.report.collect_report`::

    from repro import observability as obs

    obs.enable()
    with obs.span("exd.transform"):
        ...
    report = obs.collect_report(command="transform")
    report.save("metrics.json")

Metric-name conventions (dotted, subsystem-first):

=====================  ==============================================
``omp.*``              Batch-OMP encode (columns, iterations, flops)
``gram_cache.*``       process-wide ``DᵀD`` cache hits/misses
``pool.*``             fork-pool scheduling (chunks, workers)
``alpha.*``            α(L) estimation trials
``tuner.*``            Sec. VII tuner probes and candidates
``solver.*``           distributed regression solvers
``power_method.*``     distributed Power method
``mpi.*``              emulated SPMD runs (collective/wire words)
``store.*``            column-store I/O (chunks/bytes read, appends,
                       orphans reclaimed by crash-safe appends)
``serve.*``            encode service (requests, batches, coalesced
                       batches, 429/504 rejections, hot-swaps, and
                       per-tenant ``serve.tenant.<t>.*`` columns/nnz
                       plus Eq. 2/3 cost accounting)
``online.*``           drift-aware maintenance (minibatches observed,
                       atoms refreshed/re-seeded, drift triggers,
                       sketched-tuner sample sizes, generations
                       built/published)
=====================  ==============================================

Span paths nest with ``/`` per thread (``extdict.fit/extdict.tune``).
"""

from __future__ import annotations

from repro.observability._state import STATE
from repro.observability.metrics import (
    REGISTRY,
    MetricsRegistry,
    inc,
    merge_counters,
    observe,
    set_gauge,
)
from repro.observability.report import (
    SCHEMA,
    RunReport,
    _reset_spmd,
    collect_report,
    record_spmd_run,
)
from repro.observability.spans import SPANS, SpanRecorder, current_span_path, span

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "RunReport",
    "SCHEMA",
    "SPANS",
    "SpanRecorder",
    "collect_report",
    "current_span_path",
    "disable",
    "enable",
    "enabled",
    "inc",
    "merge_counters",
    "observe",
    "observed",
    "record_spmd_run",
    "reset",
    "set_gauge",
    "span",
]


def enable() -> None:
    """Turn the observability layer on (process-wide)."""
    STATE.enabled = True


def disable() -> None:
    """Turn the observability layer off (instrumentation becomes no-ops)."""
    STATE.enabled = False


def enabled() -> bool:
    """Whether the observability layer is currently on."""
    return STATE.enabled


def reset() -> None:
    """Clear every accumulated metric, span and SPMD aggregate."""
    REGISTRY.reset()
    SPANS.reset()
    _reset_spmd()


class observed:
    """Context manager: enable within the block, restore on exit.

    ``observed(fresh=True)`` (the default) also resets the accumulated
    state on entry, so the block's telemetry stands alone.
    """

    def __init__(self, fresh: bool = True) -> None:
        self.fresh = fresh
        self._was_enabled = False

    def __enter__(self) -> "observed":
        self._was_enabled = STATE.enabled
        if self.fresh:
            reset()
        enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        STATE.enabled = self._was_enabled
        return False

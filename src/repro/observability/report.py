"""RunReport: one JSON document unifying every telemetry source.

The report joins four streams that previously lived in separate
objects:

* the metrics registry (counters / gauges / histograms),
* the span recorder (nested timed regions),
* the MPI emulator's :class:`~repro.mpi.counters.TrafficLedger`
  (per-operation payload/wire words, aggregated over every SPMD run of
  the process while observability was enabled),
* the per-rank virtual clocks (simulated time / energy / flops totals),
* plus the Gram cache's own hit/miss/entry counts.

:func:`record_spmd_run` is the hook :func:`repro.mpi.runtime.run_spmd`
calls after every emulated run; it is a no-op while observability is
disabled.  :func:`collect_report` assembles the current process-wide
state into a :class:`RunReport`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

from repro.observability._state import STATE
from repro.observability.metrics import REGISTRY
from repro.observability.spans import SPANS

__all__ = ["RunReport", "SCHEMA", "collect_report", "record_spmd_run"]

#: Schema identifier embedded in every report (bump on layout changes).
SCHEMA = "repro.run_report/v1"

#: Traffic ops that are point-to-point rather than collective.
_P2P_OPS = frozenset({"send"})

_SPMD_LOCK = threading.Lock()


def _empty_spmd() -> dict:
    return {
        "runs": 0,
        "ranks": 0,
        "simulated_time": 0.0,
        "simulated_energy": 0.0,
        "total_flops": 0,
        "wall_time": 0.0,
        "words_sent": 0,
        "messages_sent": 0,
    }


_SPMD = _empty_spmd()
_TRAFFIC: dict[str, dict] = {}


def _reset_spmd() -> None:
    with _SPMD_LOCK:
        _SPMD.clear()
        _SPMD.update(_empty_spmd())
        _TRAFFIC.clear()


def record_spmd_run(result) -> None:
    """Fold one :class:`~repro.mpi.runtime.SPMDResult` into the totals.

    Called by ``run_spmd`` after every emulated run; no-op while
    observability is disabled.  Per-op traffic is accumulated across
    runs, clock totals are summed (``simulated_time`` adds makespans, so
    sequential runs report their combined simulated duration), and the
    headline counters (``mpi.collective.words``, ``mpi.wire.words``,
    ``mpi.runs``) land in the metrics registry as well.
    """
    if not STATE.enabled:
        return
    collective_words = 0
    wire_words = 0
    with _SPMD_LOCK:
        _SPMD["runs"] += 1
        _SPMD["ranks"] += len(result.clocks)
        _SPMD["simulated_time"] += result.simulated_time
        _SPMD["simulated_energy"] += result.simulated_energy
        _SPMD["total_flops"] += result.total_flops
        _SPMD["wall_time"] += result.wall_time
        for clock in result.clocks:
            _SPMD["words_sent"] += clock.get("words_sent", 0)
            _SPMD["messages_sent"] += clock.get("messages_sent", 0)
        for op, tally in result.traffic.snapshot().items():
            agg = _TRAFFIC.setdefault(
                op, {"calls": 0, "payload_words": 0, "wire_words": 0})
            agg["calls"] += tally.calls
            agg["payload_words"] += tally.payload_words
            agg["wire_words"] += tally.wire_words
            wire_words += tally.wire_words
            if op not in _P2P_OPS:
                collective_words += tally.payload_words
    REGISTRY.inc("mpi.runs")
    REGISTRY.inc("mpi.collective.words", collective_words)
    REGISTRY.inc("mpi.wire.words", wire_words)


def _gram_cache_stats() -> dict:
    # Imported lazily: parallel_omp itself imports observability.metrics.
    from repro.linalg.parallel_omp import GRAM_CACHE

    return {
        "hits": GRAM_CACHE.hits,
        "misses": GRAM_CACHE.misses,
        "entries": len(GRAM_CACHE),
    }


@dataclass
class RunReport:
    """JSON-serialisable unified telemetry document.

    Attributes
    ----------
    meta:
        Free-form run context (command, argv, notes).
    metrics:
        :meth:`MetricsRegistry.snapshot` — counters/gauges/histograms.
    spans:
        :meth:`SpanRecorder.snapshot` — per-path timing aggregates.
    gram_cache:
        Hit/miss/entry counts of the process-wide Gram cache.
    traffic:
        Per-operation MPI word tallies summed over the process's
        observed SPMD runs (empty when none ran).
    clocks:
        Virtual-clock totals over the observed SPMD runs (all zeros
        when none ran).
    """

    meta: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    spans: dict = field(default_factory=dict)
    gram_cache: dict = field(default_factory=dict)
    traffic: dict = field(default_factory=dict)
    clocks: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The full document as one plain dict."""
        return {
            "schema": SCHEMA,
            "meta": dict(self.meta),
            "metrics": self.metrics,
            "spans": self.spans,
            "gram_cache": self.gram_cache,
            "traffic": self.traffic,
            "clocks": self.clocks,
        }

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True,
                          default=float)

    def save(self, path: str) -> str:
        """Write the JSON document to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        return path

    def pretty(self) -> str:
        """Human-readable profile (the CLI's ``--profile`` output)."""
        lines = ["== run report =="]
        if self.meta:
            lines.append("meta: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.meta.items())))
        if self.spans:
            lines.append("-- spans (seconds) --")
            for path, s in self.spans.items():
                lines.append(
                    f"  {path}: n={s['count']} total={s['total_s']:.4f} "
                    f"min={s['min_s']:.4f} max={s['max_s']:.4f} "
                    f"errors={s['errors']}")
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append("-- counters --")
            for name in sorted(counters):
                lines.append(f"  {name}: {counters[name]}")
        gauges = self.metrics.get("gauges", {})
        if gauges:
            lines.append("-- gauges --")
            for name in sorted(gauges):
                lines.append(f"  {name}: {gauges[name]}")
        histograms = self.metrics.get("histograms", {})
        if histograms:
            lines.append("-- histograms --")
            for name in sorted(histograms):
                h = histograms[name]
                lines.append(
                    f"  {name}: n={h['count']} mean={h['mean']:.4g} "
                    f"min={h['min']:.4g} max={h['max']:.4g}")
        lines.append("-- gram cache --")
        lines.append(
            f"  hits={self.gram_cache.get('hits', 0)} "
            f"misses={self.gram_cache.get('misses', 0)} "
            f"entries={self.gram_cache.get('entries', 0)}")
        lines.append("-- mpi traffic (words) --")
        if self.traffic:
            for op in sorted(self.traffic):
                t = self.traffic[op]
                lines.append(
                    f"  {op}: calls={t['calls']} "
                    f"payload={t['payload_words']} wire={t['wire_words']}")
        else:
            lines.append("  (no emulated MPI runs observed)")
        c = self.clocks
        lines.append("-- virtual clocks --")
        lines.append(
            f"  runs={c.get('runs', 0)} ranks={c.get('ranks', 0)} "
            f"simulated_time={c.get('simulated_time', 0.0):.6g}s "
            f"simulated_energy={c.get('simulated_energy', 0.0):.6g}J "
            f"flops={c.get('total_flops', 0)}")
        return "\n".join(lines)


def collect_report(*, command: str | None = None, argv=None,
                   meta: dict | None = None) -> RunReport:
    """Assemble the process-wide telemetry into one :class:`RunReport`."""
    doc_meta: dict = {}
    if command is not None:
        doc_meta["command"] = command
    if argv is not None:
        doc_meta["argv"] = list(argv)
    if meta:
        doc_meta.update(meta)
    with _SPMD_LOCK:
        clocks = dict(_SPMD)
        traffic = {op: dict(t) for op, t in _TRAFFIC.items()}
    return RunReport(meta=doc_meta,
                     metrics=REGISTRY.snapshot(),
                     spans=SPANS.snapshot(),
                     gram_cache=_gram_cache_stats(),
                     traffic=traffic,
                     clocks=clocks)

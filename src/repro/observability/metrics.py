"""Process-wide metrics registry: counters, gauges and histograms.

Metric names are dotted strings grouped by subsystem, e.g.
``omp.columns_encoded``, ``gram_cache.hits``, ``pool.chunks``,
``mpi.collective.words``.  The registry is thread-safe (the MPI
emulator runs rank programs on threads of one process) and mergeable
(the fork-pool encode workers return counter deltas that the parent
folds back in — see :func:`repro.linalg.parallel_omp._encode_chunk`).

Instrumented call sites go through the module-level helpers
(:func:`inc`, :func:`set_gauge`, :func:`observe`), which are no-ops
while observability is disabled — the hot paths pay one flag check per
*call*, and all instrumentation sits at matrix/run granularity rather
than inside per-column loops.
"""

from __future__ import annotations

import threading

from repro.observability._state import STATE

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "inc",
    "merge_counters",
    "observe",
    "set_gauge",
]


class MetricsRegistry:
    """Thread-safe store of named counters, gauges and histograms.

    Counters accumulate (``inc``), gauges hold the last written value
    (``set_gauge``), histograms keep a streaming summary — count, sum,
    min, max — per name (``observe``); summaries are bucket-free so the
    snapshot stays small and JSON-friendly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        # name -> [count, total, min, max]
        self._histograms: dict[str, list[float]] = {}

    # -- writers -------------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        value = float(value)
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                self._histograms[name] = [1, value, value, value]
            else:
                h[0] += 1
                h[1] += value
                h[2] = min(h[2], value)
                h[3] = max(h[3], value)

    def merge_counters(self, deltas: dict) -> None:
        """Fold a ``{name: value}`` counter delta into the registry.

        This is the cross-process merge point: fork-pool workers cannot
        write into the parent's registry, so they return their counts
        and the parent merges them here.
        """
        with self._lock:
            for name, value in deltas.items():
                self._counters[name] = self._counters.get(name, 0) + value

    # -- readers -------------------------------------------------------
    def counter(self, name: str, default: float = 0) -> float:
        """Current value of counter ``name`` (``default`` when unset)."""
        with self._lock:
            return self._counters.get(name, default)

    def gauge(self, name: str, default: float | None = None):
        """Current value of gauge ``name`` (``default`` when unset)."""
        with self._lock:
            return self._gauges.get(name, default)

    def histogram(self, name: str) -> dict | None:
        """Summary dict of histogram ``name`` or ``None`` when unset."""
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                return None
            return self._summary(h)

    @staticmethod
    def _summary(h: list[float]) -> dict:
        count, total, lo, hi = h
        return {
            "count": int(count),
            "total": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
        }

    def snapshot(self) -> dict:
        """Plain-dict copy of every metric, ready for JSON."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: self._summary(h)
                               for name, h in self._histograms.items()},
            }

    def reset(self) -> None:
        """Drop every metric."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry all instrumented call sites write to.
REGISTRY = MetricsRegistry()


def inc(name: str, value: float = 1) -> None:
    """Increment a global counter — no-op while observability is off."""
    if STATE.enabled:
        REGISTRY.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a global gauge — no-op while observability is off."""
    if STATE.enabled:
        REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram sample — no-op while observability is off."""
    if STATE.enabled:
        REGISTRY.observe(name, value)


def merge_counters(deltas: dict) -> None:
    """Merge worker counter deltas — no-op while observability is off."""
    if STATE.enabled:
        REGISTRY.merge_counters(deltas)

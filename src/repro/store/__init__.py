"""Out-of-core column store + streaming ExD pipeline.

The paper's memory model (Eq. 4) and evolving-data path (Sec. V-E) both
assume ``A`` arrives in column blocks and never has to exist as one
dense in-memory array.  This package supplies that storage layer:

* :class:`~repro.store.column_store.ColumnStore` — an on-disk,
  memory-mapped, column-chunked matrix container with a JSON manifest
  (dtype, shape, chunk width, per-chunk checksums), append-only column
  growth for evolving data, and random access that only touches the
  chunks it needs.
* :class:`~repro.store.streaming.StreamingEncoder` — drives Batch-OMP
  chunk-by-chunk under a byte budget derived from Eq. 4, spilling
  encoded ``C`` blocks to disk and writing a checkpoint manifest after
  each block so a killed run resumes from the last completed block
  bit-identically.

Store-backed matrices flow through the existing stack:
``exd_transform`` / ``extend_transform`` accept a ``ColumnStore``
directly, α estimation and the tuner read only their sampled subset
columns from disk, ``ExtDict.from_store`` runs the whole framework
without materialising ``A``, and the CLI grows ``ingest`` and
``transform --store/--resume``.

Bit-identity with the in-memory path is engineered, not hoped for: BLAS
products are *not* column-wise reproducible across matrix widths, so
every encode path evaluates ``DᵀA`` and the column norms over the same
fixed, absolutely-aligned column panels
(:data:`repro.linalg.omp.ENCODE_BLOCK_COLS`).  See ``docs/store.md``.
"""

from repro.store.column_store import (
    ColumnStore,
    check_matrix_or_store,
    is_column_store,
    matrix_shape,
    take_columns,
)
from repro.store.streaming import (
    CheckpointError,
    StreamingEncoder,
    StreamingReport,
    plan_block_width,
    sample_store_dictionary,
)

__all__ = [
    "CheckpointError",
    "ColumnStore",
    "StreamingEncoder",
    "StreamingReport",
    "check_matrix_or_store",
    "is_column_store",
    "matrix_shape",
    "plan_block_width",
    "sample_store_dictionary",
    "take_columns",
]

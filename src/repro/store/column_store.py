"""On-disk, memory-mapped, column-chunked matrix container.

Layout of a store directory::

    store/
      manifest.json        # schema, dtype, shape, chunk width, chunks
      chunks/
        chunk-000000.npy   # (M, w) C-contiguous array, w <= chunk_width
        chunk-000001.npy
        ...

The manifest is the source of truth: every chunk entry records its file
name, first column, width and a CRC-32 checksum of the raw array bytes.
Manifest updates are atomic (written to a temp file, fsynced, then
``os.replace`` + directory fsync) and chunk files are fully written
before the manifest references them.  A chunk file referenced by the
current manifest is **never rewritten in place**: topping up the
trailing partial chunk writes a new *generation* of that chunk under a
fresh file name that only the new manifest references, so a writer
killed at any instant leaves either the old consistent store or the new
one — never a chunk wider than its manifest entry.  Orphan files from
interrupted appends are garbage-collected by the next append.

Reads go through ``numpy.load(..., mmap_mode="r")``: random access via
:meth:`ColumnStore.read_columns` touches only the chunks that hold the
requested columns, which is what lets α estimation and the tuner sample
a few hundred columns out of a matrix that never fits in memory.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from pathlib import Path

import numpy as np

from repro import observability as obs
from repro.errors import ValidationError
from repro.utils.validation import check_matrix, check_positive_int

__all__ = [
    "ColumnStore",
    "check_matrix_or_store",
    "is_column_store",
    "matrix_shape",
    "take_columns",
]

MANIFEST_NAME = "manifest.json"
CHUNK_DIR = "chunks"
STORE_FORMAT_VERSION = 1
DEFAULT_CHUNK_WIDTH = 256


def _crc32(arr: np.ndarray) -> str:
    """CRC-32 of the array's raw bytes, as zero-padded hex."""
    return f"{zlib.crc32(np.ascontiguousarray(arr).tobytes()):08x}"


def fsync_dir(path: Path) -> None:
    """Best-effort fsync of a directory (durability of renames within).

    ``os.replace`` makes a rename atomic but not durable: on power loss
    the directory entry can be lost, resurrecting the old file.  Opening
    the directory and fsyncing its fd flushes the rename; platforms that
    cannot fsync a directory (or open one with ``O_RDONLY``) are
    tolerated silently — they offer no stronger primitive anyway.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON durably: temp file + fsync + atomic rename + dir fsync."""
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


class ColumnStore:
    """A matrix stored on disk as column chunks, opened by directory.

    Use the classmethod constructors: :meth:`create` (empty store, grown
    with :meth:`append_columns`), :meth:`from_matrix` (chunk an existing
    array) or :meth:`open` (attach to a store on disk).  Instances hold
    no file handles between calls; every read memory-maps just the
    chunks it needs.
    """

    def __init__(self, path, manifest: dict) -> None:
        self.path = Path(path)
        self._manifest = manifest

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path, m: int, *, chunk_width: int = DEFAULT_CHUNK_WIDTH,
               dtype: str = "float64", attrs: dict | None = None,
               exist_ok: bool = False) -> "ColumnStore":
        """Create an empty store for ``(m, 0)`` data at ``path``."""
        m = check_positive_int(m, "m")
        chunk_width = check_positive_int(chunk_width, "chunk_width")
        np.dtype(dtype)  # validates the name early
        path = Path(path)
        if path.exists():
            if not exist_ok or (path / MANIFEST_NAME).exists():
                raise ValidationError(
                    f"refusing to create a column store at existing path "
                    f"{path}")
        (path / CHUNK_DIR).mkdir(parents=True, exist_ok=True)
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "dtype": str(np.dtype(dtype)),
            "rows": int(m),
            "columns": 0,
            "chunk_width": int(chunk_width),
            "chunks": [],
            "attrs": dict(attrs or {}),
            "generation": 0,
            "last_append_at": None,
        }
        _atomic_write_json(path / MANIFEST_NAME, manifest)
        return cls(path, manifest)

    @classmethod
    def from_matrix(cls, path, a, *, chunk_width: int = DEFAULT_CHUNK_WIDTH,
                    dtype: str = "float64",
                    attrs: dict | None = None) -> "ColumnStore":
        """Chunk a dense matrix into a new store (validates finiteness)."""
        a = check_matrix(a, "A", dtype=np.dtype(dtype))
        store = cls.create(path, a.shape[0], chunk_width=chunk_width,
                           dtype=dtype, attrs=attrs)
        store.append_columns(a)
        return store

    @classmethod
    def open(cls, path) -> "ColumnStore":
        """Attach to an existing store directory, validating its manifest."""
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise ValidationError(
                f"no column store at {path} (missing {MANIFEST_NAME})")
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (json.JSONDecodeError, OSError) as exc:
            raise ValidationError(
                f"corrupt column-store manifest at {manifest_path}: "
                f"{exc}") from exc
        version = manifest.get("format_version")
        if not isinstance(version, int) or version < 1:
            raise ValidationError(
                f"{manifest_path} is not a column-store manifest "
                f"(format_version={version!r})")
        if version > STORE_FORMAT_VERSION:
            raise ValidationError(
                f"column store {path} uses format_version {version}, "
                f"newer than the latest supported "
                f"({STORE_FORMAT_VERSION}); upgrade repro to read it")
        for key in ("dtype", "rows", "columns", "chunk_width", "chunks"):
            if key not in manifest:
                raise ValidationError(
                    f"column-store manifest {manifest_path} is missing "
                    f"required key {key!r}")
        return cls(path, manifest)

    # ------------------------------------------------------------------
    # metadata
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """``(M, N)`` of the stored matrix."""
        return (int(self._manifest["rows"]), int(self._manifest["columns"]))

    @property
    def ndim(self) -> int:
        """Always 2 — a store is a matrix."""
        return 2

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the stored chunks."""
        return np.dtype(self._manifest["dtype"])

    @property
    def chunk_width(self) -> int:
        """Maximum columns per chunk (the last chunk may be narrower)."""
        return int(self._manifest["chunk_width"])

    @property
    def n_chunks(self) -> int:
        """Number of chunk files."""
        return len(self._manifest["chunks"])

    @property
    def attrs(self) -> dict:
        """User metadata recorded at creation (dataset provenance etc.)."""
        return dict(self._manifest.get("attrs", {}))

    @property
    def nbytes(self) -> int:
        """Total payload bytes across chunks."""
        m = self.shape[0]
        return sum(int(c["columns"]) * m * self.dtype.itemsize
                   for c in self._manifest["chunks"])

    @property
    def generation(self) -> int:
        """Append counter: +1 on every successful ``append_columns``.

        Monotonically increasing, persisted in the manifest; stores
        written before this key existed read as generation 0.
        """
        return int(self._manifest.get("generation", 0))

    @property
    def last_append_at(self) -> float | None:
        """Unix timestamp of the last append (``None`` if never)."""
        value = self._manifest.get("last_append_at")
        return None if value is None else float(value)

    def describe(self) -> dict:
        """One JSON-ready snapshot of the store's metadata.

        What the drift monitor (and ``repro info``/``maintain``) polls
        to decide whether new data arrived — no chunk is touched.
        """
        m, n = self.shape
        return {
            "path": str(self.path),
            "format_version": int(self._manifest["format_version"]),
            "rows": m,
            "columns": n,
            "dtype": str(self.dtype),
            "chunk_width": self.chunk_width,
            "n_chunks": self.n_chunks,
            "nbytes": self.nbytes,
            "generation": self.generation,
            "last_append_at": self.last_append_at,
            "attrs": self.attrs,
        }

    def chunk_bounds(self) -> list[tuple[int, int]]:
        """``[start, stop)`` column range of every chunk, in order."""
        return [(int(c["start"]), int(c["start"]) + int(c["columns"]))
                for c in self._manifest["chunks"]]

    def fingerprint(self) -> str:
        """Stable content fingerprint (shape, dtype and chunk checksums).

        Checkpoints record this to refuse resuming against a store whose
        contents changed (including appends) since the run started.
        """
        parts = [str(self.shape), str(self.dtype),
                 str(self.chunk_width)]
        parts += [c["checksum"] for c in self._manifest["chunks"]]
        return f"{zlib.crc32('|'.join(parts).encode('utf-8')):08x}"

    def __repr__(self) -> str:
        m, n = self.shape
        return (f"ColumnStore(path={str(self.path)!r}, shape=({m}, {n}), "
                f"chunks={self.n_chunks}, chunk_width={self.chunk_width})")

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _chunk_path(self, index: int, generation: int = 0) -> Path:
        name = (f"chunk-{index:06d}.npy" if generation == 0
                else f"chunk-{index:06d}.g{generation:03d}.npy")
        return self.path / CHUNK_DIR / name

    @staticmethod
    def _chunk_generation(entry: dict) -> int:
        """Generation counter encoded in a manifest entry's file name."""
        stem = Path(entry["file"]).name
        parts = stem.split(".")
        if len(parts) == 3 and parts[1].startswith("g"):
            try:
                return int(parts[1][1:])
            except ValueError:
                return 0
        return 0

    def _write_chunk(self, index: int, arr: np.ndarray,
                     generation: int = 0) -> dict:
        """Write one chunk file atomically; return its manifest entry.

        ``generation`` > 0 writes a *new generation* of an existing
        chunk under a fresh file name: the live chunk file a current
        manifest references is never rewritten in place, so a crash at
        any point between this write and the manifest replace leaves
        the old store fully consistent (the new file is just an orphan
        until the manifest lands).
        """
        arr = np.ascontiguousarray(arr, dtype=self.dtype)
        final = self._chunk_path(index, generation)
        tmp = final.with_suffix(".npy.tmp")
        with open(tmp, "wb") as fh:
            np.save(fh, arr)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        fsync_dir(final.parent)
        return {"file": f"{CHUNK_DIR}/{final.name}",
                "start": 0,  # caller fixes up
                "columns": int(arr.shape[1]),
                "checksum": _crc32(arr)}

    def collect_orphans(self) -> int:
        """Delete chunk-directory files the manifest does not reference.

        Interrupted appends can leave ``*.npy.tmp`` temporaries and
        superseded (or never-referenced) chunk generations behind; they
        are harmless for correctness but waste disk.  Returns the number
        of files removed.  Called automatically by
        :meth:`append_columns`.
        """
        referenced = {Path(c["file"]).name for c in self._manifest["chunks"]}
        removed = 0
        chunk_dir = self.path / CHUNK_DIR
        if not chunk_dir.is_dir():
            return 0
        for entry in sorted(chunk_dir.iterdir()):
            if not entry.is_file() or entry.name in referenced:
                continue
            if not (entry.name.endswith(".npy")
                    or entry.name.endswith(".npy.tmp")):
                continue
            try:
                entry.unlink()
                removed += 1
            except OSError:
                continue  # best effort; retried on the next append
        if removed:
            fsync_dir(chunk_dir)
            obs.inc("store.orphans_collected", removed)
        return removed

    def append_columns(self, a_new) -> int:
        """Append a block of columns; returns the new total column count.

        The last partial chunk (if any) is topped up to ``chunk_width``
        by writing a *new generation* of that chunk under a fresh file
        name; further columns land in fresh chunks.  The manifest is
        replaced atomically only after every touched chunk file is fully
        on disk and no referenced file was modified, so a writer killed
        at any instant leaves either the previous consistent store or
        the new one — readers (and checkpoint fingerprints) never
        observe a half-appended store.  Orphans from a previously killed
        append are reclaimed first.
        """
        a_new = check_matrix(a_new, "A_new", dtype=self.dtype)
        m = self.shape[0]
        if a_new.shape[0] != m:
            raise ValidationError(
                f"appended columns have {a_new.shape[0]} rows, store "
                f"holds {m}")
        self.collect_orphans()
        width = self.chunk_width
        chunks = [dict(c) for c in self._manifest["chunks"]]
        pending = a_new
        appended = a_new.shape[1]

        # Top up the trailing partial chunk first — into a new
        # generation file, never over the live one.
        if chunks and int(chunks[-1]["columns"]) < width:
            last = chunks[-1]
            take = min(width - int(last["columns"]), pending.shape[1])
            old = self._read_chunk(len(chunks) - 1)
            merged = np.concatenate([old, pending[:, :take]], axis=1)
            entry = self._write_chunk(
                len(chunks) - 1, merged,
                generation=self._chunk_generation(last) + 1)
            entry["start"] = int(last["start"])
            chunks[-1] = entry
            pending = pending[:, take:]

        start = self.shape[1] + (appended - pending.shape[1])
        while pending.shape[1]:
            take = min(width, pending.shape[1])
            entry = self._write_chunk(len(chunks), pending[:, :take])
            entry["start"] = start
            chunks.append(entry)
            start += take
            pending = pending[:, take:]

        manifest = dict(self._manifest)
        manifest["chunks"] = chunks
        manifest["columns"] = int(self._manifest["columns"]) + appended
        # Monotone append generation + wall-clock stamp: the drift
        # monitor asks "how much new data since the last refresh"
        # through describe() without scanning chunks.  Pre-generation
        # manifests read as generation 0 (missing keys default), and
        # fingerprint() ignores both keys so checkpoints stay valid.
        manifest["generation"] = \
            int(self._manifest.get("generation", 0)) + 1
        manifest["last_append_at"] = time.time()
        _atomic_write_json(self.path / MANIFEST_NAME, manifest)
        self._manifest = manifest
        obs.inc("store.columns_appended", appended)
        return manifest["columns"]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _read_chunk(self, index: int, *, mmap: bool = True) -> np.ndarray:
        entry = self._manifest["chunks"][index]
        path = self.path / entry["file"]
        if not path.exists():
            raise ValidationError(
                f"column store {self.path} is missing chunk file "
                f"{entry['file']}")
        try:
            arr = np.load(path, mmap_mode="r" if mmap else None)
        except (ValueError, OSError) as exc:
            raise ValidationError(
                f"corrupt chunk file {path}: {exc}") from exc
        if arr.ndim != 2 or arr.shape != (self.shape[0],
                                          int(entry["columns"])):
            raise ValidationError(
                f"chunk file {path} has shape {arr.shape}, manifest "
                f"says ({self.shape[0]}, {entry['columns']})")
        obs.inc("store.chunks_read")
        obs.inc("store.bytes_read", arr.size * arr.itemsize)
        return arr

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        """Contiguous columns ``[lo, hi)`` as a fresh C-contiguous array.

        Only the chunks overlapping the range are opened.
        """
        m, n = self.shape
        if not (0 <= lo <= hi <= n):
            raise ValidationError(
                f"invalid column range [{lo}, {hi}) for N={n}")
        out = np.empty((m, hi - lo), dtype=self.dtype)
        for index, (start, stop) in enumerate(self.chunk_bounds()):
            if stop <= lo or start >= hi:
                continue
            arr = self._read_chunk(index)
            a, b = max(lo, start), min(hi, stop)
            out[:, a - lo:b - lo] = arr[:, a - start:b - start]
        return out

    def read_columns(self, cols) -> np.ndarray:
        """Gather an arbitrary column subset (chunks opened at most once).

        Equivalent to ``A[:, cols]`` on the dense matrix — duplicate and
        unsorted indices are honoured in order.
        """
        cols = np.asarray(cols, dtype=np.int64)
        if cols.ndim != 1:
            raise ValidationError("cols must be 1-D")
        m, n = self.shape
        if cols.size and (cols.min() < 0 or cols.max() >= n):
            raise ValidationError(
                f"column index out of range [0, {n})")
        out = np.empty((m, cols.size), dtype=self.dtype)
        bounds = self.chunk_bounds()
        starts = np.asarray([b[0] for b in bounds], dtype=np.int64)
        owner = (np.searchsorted(starts, cols, side="right") - 1
                 if cols.size else np.empty(0, dtype=np.int64))
        for index in np.unique(owner):
            arr = self._read_chunk(int(index))
            mask = owner == index
            out[:, mask] = arr[:, cols[mask] - starts[index]]
        return out

    def iter_chunks(self):
        """Yield ``(start, stop, array)`` per chunk, memory-mapped."""
        for index, (start, stop) in enumerate(self.chunk_bounds()):
            yield start, stop, self._read_chunk(index)

    def shard_plan(self, p: int) -> list[tuple[int, int]]:
        """Deterministic contiguous chunk partition for ``p`` ranks.

        Returns one half-open column range ``(lo, hi)`` per rank,
        chunk-aligned and covering ``[0, N)`` in rank order.  A pure
        function of the manifest's chunk boundaries and ``p``: every
        process derives the identical plan from the same manifest, so
        SPMD ranks agree on column ownership without communicating.
        Ranks beyond the chunk count receive empty ranges.
        """
        p = check_positive_int(p, "p")
        bounds = self.chunk_bounds()
        c = len(bounds)
        n = self.shape[1]
        plan: list[tuple[int, int]] = []
        for r in range(p):
            lo_c = r * c // p
            hi_c = (r + 1) * c // p
            if lo_c == hi_c:
                edge = bounds[lo_c][0] if lo_c < c else n
                plan.append((edge, edge))
            else:
                plan.append((bounds[lo_c][0], bounds[hi_c - 1][1]))
        return plan

    def iter_blocks(self, width: int):
        """Yield ``(lo, hi, array)`` over fixed-width column blocks.

        Blocks start at multiples of ``width`` from column 0 and the
        arrays are fresh C-contiguous copies — the read pattern of the
        streaming encoder.
        """
        width = check_positive_int(width, "width")
        n = self.shape[1]
        for lo in range(0, n, width):
            hi = min(lo + width, n)
            yield lo, hi, self.read_range(lo, hi)

    def as_array(self) -> np.ndarray:
        """Materialise the full matrix densely (tests / small stores)."""
        return self.read_range(0, self.shape[1])

    def verify(self) -> bool:
        """Check every chunk file against its manifest checksum.

        Returns ``True`` when all chunks are intact; raises
        :class:`~repro.errors.ValidationError` naming the first corrupt
        or missing chunk otherwise.
        """
        for index, entry in enumerate(self._manifest["chunks"]):
            arr = self._read_chunk(index, mmap=False)
            got = _crc32(arr)
            if got != entry["checksum"]:
                raise ValidationError(
                    f"chunk {entry['file']} of {self.path} fails its "
                    f"checksum (manifest {entry['checksum']}, file {got})")
        return True


# ----------------------------------------------------------------------
# ndarray-or-store adapters used by the core entry points
# ----------------------------------------------------------------------
def is_column_store(obj) -> bool:
    """Whether ``obj`` is a :class:`ColumnStore`."""
    return isinstance(obj, ColumnStore)


def matrix_shape(a) -> tuple[int, int]:
    """``(M, N)`` of an ndarray-like or a :class:`ColumnStore`."""
    return tuple(int(s) for s in a.shape)


def take_columns(a, cols) -> np.ndarray:
    """``A[:, cols]`` as a dense array, for ndarray or store input."""
    if is_column_store(a):
        return a.read_columns(np.asarray(cols, dtype=np.int64))
    return a[:, np.asarray(cols, dtype=np.int64)]


def check_matrix_or_store(a, name: str = "A"):
    """Validate ``a`` as a data matrix; stores pass through unchanged.

    ndarray-likes get the usual :func:`check_matrix` treatment (dtype,
    2-D, finiteness); a :class:`ColumnStore` is accepted as-is — its
    chunks were finiteness-checked when written.
    """
    if is_column_store(a):
        if a.shape[0] == 0 or a.shape[1] == 0:
            raise ValidationError(
                f"{name} must be non-empty, got store shape {a.shape}")
        if a.dtype != np.float64:
            raise ValidationError(
                f"{name} must hold float64 data for encoding, got store "
                f"dtype {a.dtype}")
        return a
    return check_matrix(a, name)

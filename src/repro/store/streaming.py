"""Streaming ExD encode over a :class:`~repro.store.ColumnStore`.

The in-memory :func:`repro.core.exd.exd_transform` holds ``A`` (M·N),
``DᵀA`` (L·N) and the growing coefficient arrays at once.  The streaming
encoder instead walks ``A`` in fixed-width column blocks read straight
from the store, so peak resident memory is the Eq. 4 footprint — the
dictionary ``D`` (M·L), its Gram matrix ``G = DᵀD`` (L²), and one
block's working set — rather than anything proportional to ``N``.

Bit-identity with the in-memory path is by construction, not luck:

* block widths are multiples of :data:`repro.linalg.omp.ENCODE_BLOCK_COLS`
  and start at column 0, so the blocked ``DᵀA`` / column-norm panels of
  every block coincide exactly with the panels the in-memory encode uses
  for the full matrix;
* normalisation, coefficient rescaling and CSC assembly are elementwise
  or gather/concatenate operations, which do not depend on how columns
  were grouped;
* dictionary sampling replays the exact RNG call sequence of
  :func:`repro.core.dictionary.sample_dictionary`.

With a ``checkpoint_dir`` the encoder spills every finished block's
coefficients to disk and atomically rewrites a checkpoint manifest, so a
run killed mid-encode resumes from the last completed block and still
produces the same bits.  The checkpoint records the store fingerprint
and every encode parameter; resuming against changed data or different
parameters raises :class:`~repro.errors.CheckpointError` instead of
silently mixing results.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import observability as obs
from repro.core.dictionary import Dictionary
from repro.core.exd import ExDStats, _rescale_columns, normalize_columns
from repro.core.fastdict import (
    as_fast_dict_config,
    fit_fast_dict,
    operator_from_arrays,
    operator_to_arrays,
)
from repro.core.transform import TransformedData
from repro.errors import CheckpointError, ValidationError
from repro.linalg.kernels import resolve_backend
from repro.linalg.omp import ENCODE_BLOCK_COLS, batch_omp_matrix
from repro.sparse.csc import CSCMatrix
from repro.store.column_store import (
    ColumnStore,
    _atomic_write_json,
    check_matrix_or_store,
    fsync_dir,
)
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_fraction, check_positive_int

__all__ = [
    "CheckpointError",
    "StreamingEncoder",
    "StreamingReport",
    "plan_block_width",
    "sample_store_dictionary",
]

CHECKPOINT_NAME = "checkpoint.json"
DICTIONARY_NAME = "dictionary.npz"
BLOCK_DIR = "blocks"
# v2: trailing partial compute panels are now zero-padded to the fixed
# ENCODE_BLOCK_COLS width (see repro.linalg.omp), which changes the bits
# of a matrix's final partial block — v1 checkpoints must not be mixed
# with v2 blocks, so resuming one is refused.
CHECKPOINT_FORMAT_VERSION = 2

#: Block width used when neither ``block_width`` nor a byte budget is
#: given: four aligned compute panels per store read.
DEFAULT_STREAM_BLOCK = 4 * ENCODE_BLOCK_COLS


def plan_block_width(m: int, l: int, memory_budget_bytes: int,
                     *, n: int | None = None) -> int:
    """Largest aligned block width whose working set fits the budget.

    The budget covers the Eq. 4 per-processor footprint: the dictionary
    ``D`` (M·L words) plus its Gram matrix (L² words) are resident for
    the whole run, and each streamed block then costs roughly two dense
    copies of its columns (the raw read and the normalised working copy,
    2·M words/column) plus the Batch-OMP correlation state (``DᵀA``
    column and the α scratch vector, 2·L words/column).

    The result is rounded *down* to a multiple of
    :data:`~repro.linalg.omp.ENCODE_BLOCK_COLS` so the streamed panels
    stay aligned with the in-memory encode.  A budget too small for even
    one panel falls back to one panel with a warning — below that the
    encode cannot preserve bit-identity.
    """
    m = check_positive_int(m, "m")
    l = check_positive_int(l, "l")
    memory_budget_bytes = check_positive_int(memory_budget_bytes,
                                             "memory_budget_bytes")
    itemsize = 8
    fixed = itemsize * (m * l + l * l)
    per_column = itemsize * (2 * m + 2 * l + 8)
    width = max(memory_budget_bytes - fixed, 0) // per_column
    width = (width // ENCODE_BLOCK_COLS) * ENCODE_BLOCK_COLS
    if width < ENCODE_BLOCK_COLS:
        warnings.warn(
            f"memory budget {memory_budget_bytes} B is below the "
            f"fixed dictionary footprint plus one "
            f"{ENCODE_BLOCK_COLS}-column panel "
            f"(~{fixed + per_column * ENCODE_BLOCK_COLS} B); "
            f"using one panel per block anyway", stacklevel=2)
        width = ENCODE_BLOCK_COLS
    if n is not None and n > 0:
        cap = -(-int(n) // ENCODE_BLOCK_COLS) * ENCODE_BLOCK_COLS
        width = min(width, cap)
    return int(width)


@dataclass
class StreamingReport:
    """I/O and checkpoint accounting of one streaming encode."""

    block_width: int
    blocks_total: int
    blocks_encoded: int
    blocks_reused: int
    chunks_read: int
    bytes_read: int
    checkpoints_written: int
    resumed: bool


def _block_checksum(data: np.ndarray, indices: np.ndarray,
                    indptr: np.ndarray) -> str:
    crc = 0
    for arr in (data, indices, indptr):
        crc = zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)
    return f"{crc:08x}"


def _atomic_savez(path: Path, **arrays) -> None:
    tmp = path.with_suffix(".npz.tmp")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


@dataclass
class _Block:
    """One finished block's coefficients (already rescaled)."""

    data: np.ndarray
    indices: np.ndarray
    indptr: np.ndarray
    iterations: int
    converged: int


def sample_store_dictionary(store: ColumnStore, size: int, *, seed=None,
                            normalize: bool = True,
                            count_read=None) -> Dictionary:
    """Replay ``sample_dictionary`` reading only the needed panels.

    Normalised atom values must match the in-memory
    ``normalize_columns(A)[:, idx]`` bit-for-bit, so norms are computed
    per aligned :data:`ENCODE_BLOCK_COLS` panel — the same reduction
    the full-matrix normalisation uses for that panel.  Shared by the
    streaming encoder and the distributed store transform (rank 0
    samples, then broadcasts).  ``count_read(lo, hi, arr)``, when
    given, observes every store read.
    """
    m, n = store.shape
    rng = as_generator(seed)
    idx = np.sort(rng.choice(n, size=size, replace=False))
    if not normalize:
        return Dictionary(store.read_columns(idx), idx)
    atoms = np.empty((m, size), dtype=np.float64)
    for panel in np.unique(idx // ENCODE_BLOCK_COLS):
        lo = int(panel) * ENCODE_BLOCK_COLS
        hi = min(lo + ENCODE_BLOCK_COLS, n)
        raw = store.read_range(lo, hi)
        if count_read is not None:
            count_read(lo, hi, raw)
        work, _ = normalize_columns(raw)
        sel = (idx >= lo) & (idx < hi)
        atoms[:, sel] = work[:, idx[sel] - lo]
    return Dictionary(atoms, idx)


class StreamingEncoder:
    """Drive Batch-OMP over a store block-by-block under a byte budget.

    Parameters
    ----------
    store:
        The :class:`~repro.store.ColumnStore` holding ``A``.
    size, eps, seed, normalize, max_atoms, strict, workers:
        Exactly the knobs of :func:`repro.core.exd.exd_transform`; the
        result is bit-identical to the in-memory call for every block
        width and worker count.
    dictionary:
        Reuse a pre-sampled dictionary instead of sampling one (no RNG
        draw happens in that case).
    memory_budget_bytes:
        Peak working-set budget; translated to a block width with
        :func:`plan_block_width`.
    block_width:
        Explicit block width (must be a positive multiple of
        :data:`~repro.linalg.omp.ENCODE_BLOCK_COLS`); overrides the
        budget when both are given.
    checkpoint_dir:
        Directory for the resumable state: ``checkpoint.json``, the
        sampled ``dictionary.npz`` and one ``blocks/block-NNNNNN.npz``
        per finished block.  ``None`` keeps everything in memory (the
        encode is still budget-bounded, just not resumable).
    backend:
        OMP kernel backend (see :mod:`repro.linalg.kernels`); ``None``
        resolves the process/environment default.  The *concrete*
        resolved name is recorded in the checkpoint and verified on
        resume — different backends agree only to the kernel tolerance
        contract, so mixing their blocks would break the bit-identity
        guarantee.  Checkpoints written before this field existed
        resume as ``numpy``.
    fast_dict:
        Learn a sparse-factor fast transform
        (:class:`~repro.core.fastdict.FastDict`) of the sampled
        dictionary before encoding; a float is the relative-complexity
        budget ``RC``, or pass a
        :class:`~repro.core.fastdict.FastDictConfig`.  The fit happens
        once at run start (deterministic given ``seed``), the factored
        dictionary is checkpointed in its factor form, and resumes
        reload it without refitting — so resumed runs stay bit-identical.
        Ignored when an already-factored ``dictionary`` is passed in.
    """

    def __init__(self, store: ColumnStore, size: int, eps: float, *,
                 seed=None, normalize: bool = True,
                 max_atoms: int | None = None, strict: bool = False,
                 workers: int | None = None,
                 dictionary: Dictionary | None = None,
                 memory_budget_bytes: int | None = None,
                 block_width: int | None = None,
                 checkpoint_dir=None,
                 backend=None,
                 fast_dict=None) -> None:
        self.store = check_matrix_or_store(store, "A")
        if not isinstance(store, ColumnStore):
            raise ValidationError(
                "StreamingEncoder needs a ColumnStore; use exd_transform "
                "directly for in-memory arrays")
        self.eps = check_fraction(eps, "eps", inclusive_low=True)
        m, n = store.shape
        if dictionary is None:
            size = check_positive_int(size, "size")
            if size > n:
                raise ValidationError(
                    f"cannot sample {size} distinct dictionary columns "
                    f"from N={n} data columns")
        elif dictionary.m != m:
            raise ValidationError(
                f"dictionary rows {dictionary.m} != data rows {m}")
        else:
            size = dictionary.size
        self.size = int(size)
        self.seed = seed
        self.normalize = bool(normalize)
        self.max_atoms = None if max_atoms is None else int(max_atoms)
        self.strict = bool(strict)
        self.workers = workers
        self.backend = resolve_backend(backend).name
        self.dictionary = dictionary
        if fast_dict is not None and dictionary is not None \
                and not isinstance(dictionary, Dictionary):
            fast_dict = None  # already factored; nothing to fit
        self.fast_dict = (None if fast_dict is None
                          else as_fast_dict_config(fast_dict))

        # _width_pinned: the caller chose (or budget-derived) the width,
        # so a resume must match it; an un-pinned default instead adopts
        # the width recorded in the checkpoint.
        self._width_pinned = (block_width is not None
                              or memory_budget_bytes is not None)
        if block_width is not None:
            block_width = check_positive_int(block_width, "block_width")
            if block_width % ENCODE_BLOCK_COLS:
                raise ValidationError(
                    f"block_width must be a multiple of "
                    f"{ENCODE_BLOCK_COLS} to stay aligned with the "
                    f"in-memory encode panels, got {block_width}")
            self.block_width = int(block_width)
        elif memory_budget_bytes is not None:
            self.block_width = plan_block_width(m, self.size,
                                                memory_budget_bytes, n=n)
        else:
            self.block_width = DEFAULT_STREAM_BLOCK

        self.checkpoint_dir = (None if checkpoint_dir is None
                               else Path(checkpoint_dir))
        if self.checkpoint_dir is not None and seed is not None \
                and not isinstance(seed, (int, np.integer)):
            raise ValidationError(
                "checkpointed runs need an integer seed (or None) so the "
                "checkpoint can verify it on resume; got "
                f"{type(seed).__name__}")

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------
    def _params(self) -> dict:
        seed = self.seed
        return {
            "size": self.size,
            "eps": float(self.eps),
            "seed": None if seed is None else int(seed),
            "normalize": self.normalize,
            "max_atoms": self.max_atoms,
            "strict": self.strict,
            "block_width": self.block_width,
            "backend": self.backend,
            "fast_dict": (None if self.fast_dict is None else {
                "rc": float(self.fast_dict.rc),
                "levels": int(self.fast_dict.levels),
                "iters": int(self.fast_dict.iters),
            }),
            "rows": int(self.store.shape[0]),
            "columns": int(self.store.shape[1]),
        }

    def _block_path(self, index: int) -> Path:
        return self.checkpoint_dir / BLOCK_DIR / f"block-{index:06d}.npz"

    def _write_checkpoint(self, entries: dict[int, dict],
                          status: str) -> None:
        payload = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "store_fingerprint": self.store.fingerprint(),
            "params": self._params(),
            "blocks": [entries[i] for i in sorted(entries)],
            "status": status,
        }
        _atomic_write_json(self.checkpoint_dir / CHECKPOINT_NAME, payload)
        self._checkpoints_written += 1
        obs.inc("store.checkpoints_written")

    def _save_dictionary(self, dictionary) -> None:
        if isinstance(dictionary, Dictionary):
            _atomic_savez(self.checkpoint_dir / DICTIONARY_NAME,
                          atoms=dictionary.atoms,
                          indices=dictionary.indices)
            return
        # Factored dictionary: persist the factor chain itself so a
        # resume reconstructs the identical operator without refitting.
        kind, arrays = operator_to_arrays(dictionary)
        _atomic_savez(self.checkpoint_dir / DICTIONARY_NAME,
                      dictionary_kind=np.asarray(kind), **arrays)

    def _load_dictionary(self):
        path = self.checkpoint_dir / DICTIONARY_NAME
        if not path.exists():
            raise CheckpointError(
                f"checkpoint at {self.checkpoint_dir} has no "
                f"{DICTIONARY_NAME}; remove the directory and rerun")
        try:
            with np.load(path, allow_pickle=False) as npz:
                if "dictionary_kind" in npz.files:
                    kind = str(npz["dictionary_kind"])
                    arrays = {k: npz[k] for k in npz.files
                              if k != "dictionary_kind"}
                    return operator_from_arrays(kind, arrays)
                return Dictionary(npz["atoms"], npz["indices"])
        except (ValueError, OSError, KeyError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint dictionary {path}: {exc}") from exc

    def _load_checkpoint(self, resume: bool):
        """Return ``(dictionary, completed_entries)`` or fresh-run None.

        ``completed_entries`` only contains blocks whose spill files
        exist and pass their checksums — anything else is silently
        re-encoded.
        """
        if self.checkpoint_dir is None:
            return None
        path = self.checkpoint_dir / CHECKPOINT_NAME
        if not path.exists():
            return None
        if not resume:
            raise CheckpointError(
                f"{self.checkpoint_dir} already holds a checkpoint; pass "
                f"resume=True to continue it or remove the directory for "
                f"a fresh run")
        try:
            with open(path, encoding="utf-8") as fh:
                state = json.load(fh)
        except (json.JSONDecodeError, OSError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint manifest {path}: {exc}") from exc
        version = state.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} has format_version {version!r}, "
                f"expected {CHECKPOINT_FORMAT_VERSION}")
        if state.get("store_fingerprint") != self.store.fingerprint():
            raise CheckpointError(
                f"checkpoint {path} was written against different store "
                f"contents (fingerprint mismatch); the data changed "
                f"since the run started")
        params = state.get("params", {})
        # Checkpoints written before the pluggable-kernel refactor have
        # no backend field; they were encoded by the numpy reference.
        params.setdefault("backend", "numpy")
        # Likewise, pre-FastDict checkpoints encoded the dense sample.
        params.setdefault("fast_dict", None)
        ck_width = params.get("block_width")
        if not self._width_pinned and isinstance(ck_width, int) \
                and ck_width > 0 and ck_width % ENCODE_BLOCK_COLS == 0:
            self.block_width = ck_width
        mine = self._params()
        mismatched = sorted(k for k in mine if params.get(k) != mine[k])
        if mismatched:
            detail = ", ".join(
                f"{k}: checkpoint {params.get(k)!r} != requested "
                f"{mine[k]!r}" for k in mismatched)
            raise CheckpointError(
                f"checkpoint {path} parameters do not match this run "
                f"({detail})")
        dictionary = self._load_dictionary()
        # With fast_dict configured, the checkpoint holds the *fitted*
        # operator, not the dense source that was passed in — the fit
        # provenance is pinned by the params check (rc/levels/iters and
        # seed) instead of an atom comparison.
        fitted_resume = (self.fast_dict is not None
                         and self.dictionary is not None
                         and isinstance(self.dictionary, Dictionary)
                         and not isinstance(dictionary, Dictionary))
        if self.dictionary is not None and not fitted_resume \
                and not np.array_equal(
                    self.dictionary.atoms, dictionary.atoms):
            raise CheckpointError(
                f"checkpoint {path} was written with a different "
                f"dictionary than the one passed in")
        # Spill files are validated lazily by the encode loop — a
        # missing or corrupt one is simply re-encoded.
        completed = {int(e["index"]): e for e in state.get("blocks", [])}
        return dictionary, completed

    def _load_block(self, entry: dict) -> _Block | None:
        """Load a spilled block, returning None if missing or corrupt."""
        path = self.checkpoint_dir / BLOCK_DIR / entry["file"]
        if not path.exists():
            warnings.warn(
                f"checkpoint block {path} is missing; re-encoding it",
                stacklevel=2)
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                block = _Block(
                    data=np.asarray(npz["data"], dtype=np.float64),
                    indices=np.asarray(npz["indices"], dtype=np.int64),
                    indptr=np.asarray(npz["indptr"], dtype=np.int64),
                    iterations=int(npz["iterations"]),
                    converged=int(npz["converged"]))
        except (ValueError, OSError, KeyError) as exc:
            warnings.warn(
                f"checkpoint block {path} is unreadable ({exc}); "
                f"re-encoding it", stacklevel=2)
            return None
        got = _block_checksum(block.data, block.indices, block.indptr)
        if got != entry.get("checksum"):
            warnings.warn(
                f"checkpoint block {path} fails its checksum; "
                f"re-encoding it", stacklevel=2)
            return None
        return block

    def _spill_block(self, index: int, lo: int, hi: int,
                     block: _Block, entries: dict[int, dict]) -> None:
        path = self._block_path(index)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_savez(path, data=block.data, indices=block.indices,
                      indptr=block.indptr,
                      iterations=np.int64(block.iterations),
                      converged=np.int64(block.converged))
        entries[index] = {
            "index": index,
            "start": lo,
            "stop": hi,
            "file": path.name,
            "checksum": _block_checksum(block.data, block.indices,
                                        block.indptr),
            "iterations": block.iterations,
            "converged": block.converged,
            "nnz": int(block.data.size),
        }
        self._write_checkpoint(entries, "in_progress")

    # ------------------------------------------------------------------
    # dictionary sampling from disk
    # ------------------------------------------------------------------
    def _sample_dictionary(self) -> Dictionary:
        return sample_store_dictionary(
            self.store, self.size, seed=self.seed,
            normalize=self.normalize, count_read=self._count_read)

    def _count_read(self, lo: int, hi: int, arr: np.ndarray) -> None:
        self._bytes_read += arr.nbytes
        self._chunks_read += sum(1 for start, stop
                                 in self.store.chunk_bounds()
                                 if start < hi and stop > lo)

    # ------------------------------------------------------------------
    # the encode loop
    # ------------------------------------------------------------------
    def run(self, *, resume: bool = False) \
            -> tuple[TransformedData, ExDStats, StreamingReport]:
        """Encode the store; returns ``(transform, stats, report)``.

        ``transform`` and ``stats`` are bit-identical to
        ``exd_transform(store.as_array(), ...)`` with the same
        parameters.  With ``resume=True`` and a populated
        ``checkpoint_dir``, completed blocks are loaded from their spill
        files instead of re-encoded; without a checkpoint on disk,
        ``resume=True`` degrades to a fresh run.
        """
        self._bytes_read = 0
        self._chunks_read = 0
        self._checkpoints_written = 0
        m, n = self.store.shape
        entries: dict[int, dict] = {}
        resumed = False

        with obs.span("store.stream_encode"):
            # _load_checkpoint may adopt the checkpoint's block width (an
            # un-pinned run resuming a budget-planned one), so the block
            # bounds are derived only afterwards.
            state = self._load_checkpoint(resume)
            width = self.block_width
            bounds = [(lo, min(lo + width, n))
                      for lo in range(0, n, width)]
            if state is not None:
                dictionary, entries = state
                resumed = True
            elif self.dictionary is not None:
                dictionary = self.dictionary
            else:
                dictionary = self._sample_dictionary()
            if not resumed and self.fast_dict is not None \
                    and isinstance(dictionary, Dictionary):
                cfg = self.fast_dict
                dictionary = fit_fast_dict(
                    dictionary, rc=cfg.rc, levels=cfg.levels,
                    iters=cfg.iters, seed=derive_seed(self.seed, 11))
            if self.checkpoint_dir is not None and not resumed:
                self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
                self._save_dictionary(dictionary)
                self._write_checkpoint(entries, "in_progress")

            gram = dictionary.gram()
            blocks: list[_Block] = []
            encoded = reused = 0
            for index, (lo, hi) in enumerate(bounds):
                entry = entries.get(index)
                if entry is not None:
                    block = self._load_block(entry)
                    if block is not None:
                        blocks.append(block)
                        reused += 1
                        obs.inc("store.blocks_reused")
                        continue
                    del entries[index]
                raw = self.store.read_range(lo, hi)
                self._count_read(lo, hi, raw)
                if self.normalize:
                    work, norms = normalize_columns(raw)
                else:
                    work, norms = raw, None
                c_blk, st = batch_omp_matrix(
                    dictionary, work, self.eps,
                    max_atoms=self.max_atoms, strict=self.strict,
                    gram=gram, workers=self.workers,
                    backend=self.backend)
                if self.normalize:
                    c_blk = _rescale_columns(c_blk, norms)
                block = _Block(data=c_blk.data, indices=c_blk.indices,
                               indptr=c_blk.indptr,
                               iterations=st.total_iterations,
                               converged=st.converged_columns)
                if self.checkpoint_dir is not None:
                    self._spill_block(index, lo, hi, block, entries)
                blocks.append(block)
                encoded += 1
                obs.inc("store.blocks_encoded")
            if self.checkpoint_dir is not None:
                self._write_checkpoint(entries, "complete")

            c, stats = self._assemble(dictionary, blocks, m, n)
        meta = {"normalized": self.normalize}
        if not isinstance(dictionary, Dictionary):
            meta["fastdict_rc"] = float(dictionary.relative_complexity)
            meta["fastdict_residual"] = float(getattr(dictionary,
                                                      "residual", 0.0))
        transform = TransformedData(dictionary=dictionary, coefficients=c,
                                    eps=self.eps, method="exd",
                                    meta=meta)
        obs.inc("exd.transforms")
        obs.observe("exd.alpha", transform.alpha)
        report = StreamingReport(
            block_width=width, blocks_total=len(bounds),
            blocks_encoded=encoded, blocks_reused=reused,
            chunks_read=self._chunks_read, bytes_read=self._bytes_read,
            checkpoints_written=self._checkpoints_written,
            resumed=resumed)
        return transform, stats, report

    def _assemble(self, dictionary, blocks: list[_Block],
                  m: int, n: int) -> tuple[CSCMatrix, ExDStats]:
        """Concatenate per-block CSC triples into the full ``C``.

        Identical to what the in-memory column builder produces: the
        per-column (indices, data) runs are bitwise equal, and the
        global ``indptr`` is the same prefix-sum of column counts.
        """
        l = dictionary.size
        c = CSCMatrix.hstack_all(
            CSCMatrix(b.data, b.indices, b.indptr,
                      (l, b.indptr.size - 1), check=False)
            for b in blocks)
        total_iters = sum(b.iterations for b in blocks)
        # Additive form of the in-memory FLOP model: the DᵀA term
        # 2·T·Σwᵢ telescopes to 2·T·N exactly, where T = transform_nnz
        # is the per-column Dᵀx cost (M·L dense, Σⱼ nnz(Sⱼ) factored).
        tnnz = dictionary.transform_nnz
        flops = 2 * tnnz * n + 4 * l * total_iters + 2 * c.nnz
        stats = ExDStats(
            columns=n,
            converged_columns=sum(b.converged for b in blocks),
            omp_iterations=total_iters,
            flops=int(flops))
        return c, stats

"""Sparse-matrix substrate.

The paper's coefficient matrix ``C`` is stored column-compressed because
ExD produces it one column at a time (one OMP solve per data column) and
Algorithm 2 partitions it by columns across processors.  We implement the
containers from scratch rather than using :mod:`scipy.sparse` so that

* every kernel reports exact FLOP counts to the performance model
  (Sec. VI-B charges ``nnz(C)`` multiplications per sparse product), and
* column partitioning / zero-padded extension (the evolving-data update,
  Sec. V-E) are first-class, cheap operations.
"""

from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.builder import ColumnBuilder
from repro.sparse.ops import (
    csc_matvec,
    csc_rmatvec,
    counted_matvec,
    counted_rmatvec,
    counted_dense_matvec,
    counted_dense_rmatvec,
    FlopCount,
)

__all__ = [
    "CSCMatrix",
    "CSRMatrix",
    "ColumnBuilder",
    "csc_matvec",
    "csc_rmatvec",
    "counted_matvec",
    "counted_rmatvec",
    "counted_dense_matvec",
    "counted_dense_rmatvec",
    "FlopCount",
]

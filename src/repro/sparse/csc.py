"""Compressed-sparse-column matrix.

Layout is the classic ``(data, indices, indptr)`` triple: column ``j``
holds entries ``data[indptr[j]:indptr[j+1]]`` at row positions
``indices[indptr[j]:indptr[j+1]]``.  Row indices within a column are kept
sorted, which canonicalises the representation and makes equality testing
and conversion deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


class CSCMatrix:
    """Immutable CSC matrix of float64 values.

    Parameters
    ----------
    data, indices, indptr:
        Standard CSC arrays.  ``indptr`` has length ``ncols + 1``.
    shape:
        ``(nrows, ncols)``.
    check:
        When True (default) the invariants are validated; internal callers
        that construct by known-good slicing pass False.
    """

    __slots__ = ("data", "indices", "indptr", "shape", "_colind_cache")

    def __init__(self, data, indices, indptr, shape, *, check: bool = True):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._colind_cache = None
        if check:
            self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense, *, tol: float = 0.0) -> "CSCMatrix":
        """Build from a dense array, dropping entries with ``|v| <= tol``."""
        arr = np.asarray(dense, dtype=np.float64)
        if arr.ndim != 2:
            raise ValidationError(f"dense input must be 2-D, got {arr.ndim}-D")
        nrows, ncols = arr.shape
        mask = np.abs(arr) > tol
        # Column-major walk so entries land in CSC order directly.
        cols, rows = np.nonzero(mask.T)
        data = arr[rows, cols]
        counts = np.bincount(cols, minlength=ncols)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(data, rows, indptr, (nrows, ncols), check=False)

    @classmethod
    def zeros(cls, shape) -> "CSCMatrix":
        """All-zero matrix of the given shape."""
        nrows, ncols = int(shape[0]), int(shape[1])
        return cls(np.empty(0), np.empty(0, dtype=np.int64),
                   np.zeros(ncols + 1, dtype=np.int64), (nrows, ncols),
                   check=False)

    @classmethod
    def identity(cls, n: int) -> "CSCMatrix":
        """The n-by-n identity (the ``D = A`` extreme of Sec. VII)."""
        return cls(np.ones(n), np.arange(n, dtype=np.int64),
                   np.arange(n + 1, dtype=np.int64), (n, n), check=False)

    def _validate(self) -> None:
        nrows, ncols = self.shape
        if self.indptr.shape != (ncols + 1,):
            raise ValidationError(
                f"indptr must have length ncols+1={ncols + 1}, "
                f"got {self.indptr.shape}")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValidationError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValidationError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValidationError("indices and data must have equal length")
        if self.data.size and (self.indices.min() < 0
                               or self.indices.max() >= nrows):
            raise ValidationError("row index out of range")
        for j in range(ncols):
            seg = self.indices[self.indptr[j]:self.indptr[j + 1]]
            if seg.size > 1 and np.any(np.diff(seg) <= 0):
                raise ValidationError(
                    f"row indices in column {j} must be strictly increasing")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of explicitly stored entries."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes (data + indices + indptr)."""
        return int(self.data.nbytes + self.indices.nbytes + self.indptr.nbytes)

    def column_nnz(self) -> np.ndarray:
        """Per-column nonzero counts (the per-column density of Fig. 4)."""
        return np.diff(self.indptr)

    def col_indices_expanded(self) -> np.ndarray:
        """Column index of every stored entry (cached; used by kernels)."""
        if self._colind_cache is None or \
                self._colind_cache.size != self.data.size:
            self._colind_cache = np.repeat(
                np.arange(self.shape[1], dtype=np.int64), np.diff(self.indptr))
        return self._colind_cache

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ndarray."""
        out = np.zeros(self.shape)
        out[self.indices, self.col_indices_expanded()] = self.data
        return out

    def to_scipy(self):
        """Convert to ``scipy.sparse.csc_matrix`` (for cross-validation)."""
        import scipy.sparse as sp
        return sp.csc_matrix((self.data, self.indices, self.indptr),
                             shape=self.shape)

    def transpose_csr(self) -> "CSRMatrix":
        """Return the transpose, reinterpreted as CSR with no copy of logic.

        CSC arrays of ``C`` are exactly the CSR arrays of ``Cᵀ``.
        """
        from repro.sparse.csr import CSRMatrix
        return CSRMatrix(self.data, self.indices, self.indptr,
                         (self.shape[1], self.shape[0]), check=False)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def column(self, j: int) -> np.ndarray:
        """Dense copy of column ``j``."""
        nrows, ncols = self.shape
        if not 0 <= j < ncols:
            raise ValidationError(f"column {j} out of range [0, {ncols})")
        out = np.zeros(nrows)
        lo, hi = self.indptr[j], self.indptr[j + 1]
        out[self.indices[lo:hi]] = self.data[lo:hi]
        return out

    def slice_columns(self, start: int, stop: int) -> "CSCMatrix":
        """Contiguous column slice ``[start, stop)`` — Alg. 2's partitioning."""
        nrows, ncols = self.shape
        if not (0 <= start <= stop <= ncols):
            raise ValidationError(
                f"invalid column slice [{start}, {stop}) for ncols={ncols}")
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSCMatrix(self.data[lo:hi], self.indices[lo:hi],
                         self.indptr[start:stop + 1] - lo,
                         (nrows, stop - start), check=False)

    def select_columns(self, cols) -> "CSCMatrix":
        """Gather an arbitrary column subset (used by subset estimation)."""
        cols = np.asarray(cols, dtype=np.int64)
        nrows, ncols = self.shape
        if cols.size and (cols.min() < 0 or cols.max() >= ncols):
            raise ValidationError("column index out of range")
        counts = self.indptr[cols + 1] - self.indptr[cols]
        indptr = np.concatenate(([0], np.cumsum(counts)))
        nnz = int(indptr[-1])
        data = np.empty(nnz)
        indices = np.empty(nnz, dtype=np.int64)
        for k, j in enumerate(cols):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            data[indptr[k]:indptr[k + 1]] = self.data[lo:hi]
            indices[indptr[k]:indptr[k + 1]] = self.indices[lo:hi]
        return CSCMatrix(data, indices, indptr, (nrows, cols.size), check=False)

    def hstack(self, other: "CSCMatrix") -> "CSCMatrix":
        """Concatenate columns: ``[self, other]`` (evolving-data append)."""
        if other.shape[0] != self.shape[0]:
            raise ValidationError(
                f"row mismatch in hstack: {self.shape[0]} vs {other.shape[0]}")
        data = np.concatenate([self.data, other.data])
        indices = np.concatenate([self.indices, other.indices])
        indptr = np.concatenate([self.indptr,
                                 other.indptr[1:] + self.indptr[-1]])
        return CSCMatrix(data, indices, indptr,
                         (self.shape[0], self.shape[1] + other.shape[1]),
                         check=False)

    @classmethod
    def hstack_all(cls, blocks) -> "CSCMatrix":
        """Concatenate many blocks column-wise in a single pass.

        Equivalent to folding :meth:`hstack` but without the quadratic
        re-copying; the streaming encoder assembles its per-block
        coefficient spills with this.
        """
        blocks = list(blocks)
        if not blocks:
            raise ValidationError("hstack_all needs at least one block")
        nrows = blocks[0].shape[0]
        for b in blocks[1:]:
            if b.shape[0] != nrows:
                raise ValidationError(
                    f"row mismatch in hstack_all: {nrows} vs {b.shape[0]}")
        data = np.concatenate([b.data for b in blocks])
        indices = np.concatenate([b.indices for b in blocks])
        ncols = sum(b.shape[1] for b in blocks)
        indptr = np.zeros(ncols + 1, dtype=np.int64)
        col = 0
        offset = 0
        for b in blocks:
            w = b.shape[1]
            indptr[col + 1:col + w + 1] = offset + b.indptr[1:]
            col += w
            offset += int(b.indptr[-1])
        return cls(data, indices, indptr, (nrows, ncols), check=False)

    def pad_rows(self, new_nrows: int) -> "CSCMatrix":
        """Zero-pad to ``new_nrows`` rows (Fig. 3's block-diagonal update)."""
        if new_nrows < self.shape[0]:
            raise ValidationError(
                f"cannot shrink rows {self.shape[0]} -> {new_nrows}")
        return CSCMatrix(self.data, self.indices, self.indptr,
                         (new_nrows, self.shape[1]), check=False)

    def shift_rows(self, offset: int) -> "CSCMatrix":
        """Shift all row indices down by ``offset`` (for block stacking)."""
        if offset < 0:
            raise ValidationError("offset must be non-negative")
        return CSCMatrix(self.data, self.indices + offset, self.indptr,
                         (self.shape[0] + offset, self.shape[1]), check=False)

    # ------------------------------------------------------------------
    # arithmetic (thin wrappers over repro.sparse.ops kernels)
    # ------------------------------------------------------------------
    def matvec(self, x) -> np.ndarray:
        """``self @ x``."""
        from repro.sparse.ops import csc_matvec
        return csc_matvec(self, np.asarray(x, dtype=np.float64))

    def rmatvec(self, y) -> np.ndarray:
        """``selfᵀ @ y``."""
        from repro.sparse.ops import csc_rmatvec
        return csc_rmatvec(self, np.asarray(y, dtype=np.float64))

    def __matmul__(self, x):
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return self.matvec(x)
        if x.ndim == 2:
            return np.stack([self.matvec(x[:, k]) for k in range(x.shape[1])],
                            axis=1)
        raise ValidationError("operand must be 1-D or 2-D")

    def frobenius_norm(self) -> float:
        """``‖self‖_F`` from stored entries."""
        return float(np.sqrt(np.dot(self.data, self.data)))

    def allclose(self, other: "CSCMatrix", *, atol: float = 1e-12) -> bool:
        """Numerically compare two CSC matrices entry-wise."""
        if self.shape != other.shape:
            return False
        return bool(np.allclose(self.to_dense(), other.to_dense(), atol=atol))

    def __repr__(self) -> str:
        nrows, ncols = self.shape
        return f"CSCMatrix(shape=({nrows}, {ncols}), nnz={self.nnz})"

"""Numerical kernels with explicit FLOP accounting.

The performance model (Sec. VI-B) charges sparse products ``nnz``
multiplications; dense products ``M·L``.  Each ``counted_*`` kernel
returns the result *and* a :class:`FlopCount` so the simulated platform
can advance its virtual clock by exactly the work the model describes.

Kernels are fully vectorised (``bincount`` scatter-reduce) per the
HPC guide: no per-nonzero Python loops on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class FlopCount:
    """Multiplication / addition counts for one kernel invocation."""

    mults: int
    adds: int

    @property
    def total(self) -> int:
        """Total floating-point operations."""
        return self.mults + self.adds

    def __add__(self, other: "FlopCount") -> "FlopCount":
        return FlopCount(self.mults + other.mults, self.adds + other.adds)


def _check_csc_operand(c, x, *, transposed: bool) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    expected = c.shape[0] if transposed else c.shape[1]
    if x.shape != (expected,):
        raise ValidationError(
            f"operand must have shape ({expected},), got {x.shape}")
    return x


def csc_matvec(c, x) -> np.ndarray:
    """``y = C @ x`` for CSC ``C`` (L×N) and dense ``x`` (N,).

    Scatter-reduce formulation: every stored entry contributes
    ``data_k * x[col_k]`` to ``y[row_k]``; ``bincount`` performs the
    grouped accumulation in C.
    """
    x = _check_csc_operand(c, x, transposed=False)
    if c.nnz == 0:
        return np.zeros(c.shape[0])
    contrib = c.data * x[c.col_indices_expanded()]
    return np.bincount(c.indices, weights=contrib, minlength=c.shape[0])


def csc_rmatvec(c, y) -> np.ndarray:
    """``z = Cᵀ @ y`` for CSC ``C`` (L×N) and dense ``y`` (L,)."""
    y = _check_csc_operand(c, y, transposed=True)
    if c.nnz == 0:
        return np.zeros(c.shape[1])
    contrib = c.data * y[c.indices]
    return np.bincount(c.col_indices_expanded(), weights=contrib,
                       minlength=c.shape[1])


def counted_matvec(c, x) -> tuple[np.ndarray, FlopCount]:
    """``C @ x`` plus its FLOP count: nnz mults, ~nnz adds."""
    out = csc_matvec(c, x)
    nnz = c.nnz
    return out, FlopCount(mults=nnz, adds=max(nnz - c.shape[0], 0))


def counted_rmatvec(c, y) -> tuple[np.ndarray, FlopCount]:
    """``Cᵀ @ y`` plus its FLOP count."""
    out = csc_rmatvec(c, y)
    nnz = c.nnz
    return out, FlopCount(mults=nnz, adds=max(nnz - c.shape[1], 0))


def counted_dense_matvec(d: np.ndarray, v: np.ndarray) \
        -> tuple[np.ndarray, FlopCount]:
    """``D @ v`` for dense ``D`` (M×L): M·L mults, M·(L−1) adds."""
    d = np.asarray(d, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if d.ndim != 2 or v.shape != (d.shape[1],):
        raise ValidationError(
            f"shape mismatch: D{d.shape} @ v{v.shape}")
    m, l = d.shape
    return d @ v, FlopCount(mults=m * l, adds=m * max(l - 1, 0))


def counted_dense_rmatvec(d: np.ndarray, w: np.ndarray) \
        -> tuple[np.ndarray, FlopCount]:
    """``Dᵀ @ w`` for dense ``D`` (M×L): M·L mults, (M−1)·L adds."""
    d = np.asarray(d, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    if d.ndim != 2 or w.shape != (d.shape[0],):
        raise ValidationError(
            f"shape mismatch: Dᵀ{d.shape} @ w{w.shape}")
    m, l = d.shape
    return d.T @ w, FlopCount(mults=m * l, adds=max(m - 1, 0) * l)

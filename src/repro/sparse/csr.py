"""Compressed-sparse-row matrix.

Used where row access dominates: SGD samples row batches of the data
matrix, and ``Cᵀ`` products in Algorithm 2 step 7 are row-major over the
local column block.  Shares numerical kernels with the CSC class via the
transpose identity (CSR arrays of ``X`` are CSC arrays of ``Xᵀ``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError


class CSRMatrix:
    """Immutable CSR matrix of float64 values."""

    __slots__ = ("data", "indices", "indptr", "shape", "_rowind_cache")

    def __init__(self, data, indices, indptr, shape, *, check: bool = True):
        self.data = np.asarray(data, dtype=np.float64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.shape = (int(shape[0]), int(shape[1]))
        self._rowind_cache = None
        if check:
            self._validate()

    @classmethod
    def from_dense(cls, dense, *, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense array, dropping entries with ``|v| <= tol``."""
        arr = np.asarray(dense, dtype=np.float64)
        if arr.ndim != 2:
            raise ValidationError(f"dense input must be 2-D, got {arr.ndim}-D")
        nrows, ncols = arr.shape
        rows, cols = np.nonzero(np.abs(arr) > tol)
        data = arr[rows, cols]
        counts = np.bincount(rows, minlength=nrows)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(data, cols, indptr, (nrows, ncols), check=False)

    def _validate(self) -> None:
        nrows, ncols = self.shape
        if self.indptr.shape != (nrows + 1,):
            raise ValidationError(
                f"indptr must have length nrows+1={nrows + 1}, "
                f"got {self.indptr.shape}")
        if self.indptr[0] != 0 or self.indptr[-1] != self.data.size:
            raise ValidationError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValidationError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValidationError("indices and data must have equal length")
        if self.data.size and (self.indices.min() < 0
                               or self.indices.max() >= ncols):
            raise ValidationError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of explicitly stored entries."""
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Storage footprint in bytes."""
        return int(self.data.nbytes + self.indices.nbytes + self.indptr.nbytes)

    def row_indices_expanded(self) -> np.ndarray:
        """Row index of every stored entry (cached)."""
        if self._rowind_cache is None or \
                self._rowind_cache.size != self.data.size:
            self._rowind_cache = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr))
        return self._rowind_cache

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense ndarray."""
        out = np.zeros(self.shape)
        out[self.row_indices_expanded(), self.indices] = self.data
        return out

    def transpose_csc(self):
        """Transpose reinterpreted as CSC (zero-copy)."""
        from repro.sparse.csc import CSCMatrix
        return CSCMatrix(self.data, self.indices, self.indptr,
                         (self.shape[1], self.shape[0]), check=False)

    def row(self, i: int) -> np.ndarray:
        """Dense copy of row ``i``."""
        nrows, ncols = self.shape
        if not 0 <= i < nrows:
            raise ValidationError(f"row {i} out of range [0, {nrows})")
        out = np.zeros(ncols)
        lo, hi = self.indptr[i], self.indptr[i + 1]
        out[self.indices[lo:hi]] = self.data[lo:hi]
        return out

    def slice_rows(self, start: int, stop: int) -> "CSRMatrix":
        """Contiguous row slice ``[start, stop)``."""
        nrows, ncols = self.shape
        if not (0 <= start <= stop <= nrows):
            raise ValidationError(
                f"invalid row slice [{start}, {stop}) for nrows={nrows}")
        lo, hi = self.indptr[start], self.indptr[stop]
        return CSRMatrix(self.data[lo:hi], self.indices[lo:hi],
                         self.indptr[start:stop + 1] - lo,
                         (stop - start, ncols), check=False)

    def matvec(self, x) -> np.ndarray:
        """``self @ x`` via the transposed CSC kernel."""
        return self.transpose_csc().rmatvec(x)

    def rmatvec(self, y) -> np.ndarray:
        """``selfᵀ @ y`` via the transposed CSC kernel."""
        return self.transpose_csc().matvec(y)

    def __matmul__(self, x):
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            return self.matvec(x)
        if x.ndim == 2:
            return np.stack([self.matvec(x[:, k]) for k in range(x.shape[1])],
                            axis=1)
        raise ValidationError("operand must be 1-D or 2-D")

    def __repr__(self) -> str:
        nrows, ncols = self.shape
        return f"CSRMatrix(shape=({nrows}, {ncols}), nnz={self.nnz})"

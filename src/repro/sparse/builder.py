"""Incremental column-wise CSC construction.

ExD (Alg. 1 step 3) produces the coefficient matrix one sparse column at
a time; the builder appends columns in amortised O(nnz) without
re-allocating per column (growth doubling), then finalises into an
immutable :class:`~repro.sparse.csc.CSCMatrix`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.sparse.csc import CSCMatrix


class ColumnBuilder:
    """Accumulates sparse columns for an ``nrows``-row matrix.

    Example
    -------
    >>> b = ColumnBuilder(nrows=4)
    >>> b.add_column([0, 2], [1.0, -1.0])
    >>> b.add_column([], [])
    >>> b.finalize().shape
    (4, 2)
    """

    def __init__(self, nrows: int, *, capacity: int = 64) -> None:
        if nrows <= 0:
            raise ValidationError(f"nrows must be positive, got {nrows}")
        self.nrows = int(nrows)
        self._data = np.empty(max(int(capacity), 1))
        self._indices = np.empty(max(int(capacity), 1), dtype=np.int64)
        self._nnz = 0
        self._indptr: list[int] = [0]
        self._finalized = False

    @property
    def ncols(self) -> int:
        """Number of columns appended so far."""
        return len(self._indptr) - 1

    @property
    def nnz(self) -> int:
        """Number of entries appended so far."""
        return self._nnz

    def _grow(self, needed: int) -> None:
        cap = self._data.size
        while cap < needed:
            cap *= 2
        if cap != self._data.size:
            self._data = np.resize(self._data, cap)
            self._indices = np.resize(self._indices, cap)

    def add_column(self, rows, values) -> None:
        """Append one column given its nonzero row indices and values.

        Rows need not be pre-sorted; they are sorted here so the finalised
        matrix is canonical.  Zero-valued entries are kept if explicitly
        passed (OMP never produces them, but the container stays faithful
        to its input).
        """
        if self._finalized:
            raise ValidationError("builder already finalized")
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if rows.shape != values.shape or rows.ndim != 1:
            raise ValidationError("rows and values must be equal-length 1-D")
        if rows.size:
            if rows.min() < 0 or rows.max() >= self.nrows:
                raise ValidationError("row index out of range")
            if np.unique(rows).size != rows.size:
                raise ValidationError("duplicate row index within a column")
            order = np.argsort(rows, kind="stable")
            rows, values = rows[order], values[order]
        self._grow(self._nnz + rows.size)
        self._data[self._nnz:self._nnz + rows.size] = values
        self._indices[self._nnz:self._nnz + rows.size] = rows
        self._nnz += rows.size
        self._indptr.append(self._nnz)

    def add_dense_column(self, col, *, tol: float = 0.0) -> None:
        """Append a dense column, keeping entries with ``|v| > tol``."""
        col = np.asarray(col, dtype=np.float64)
        if col.shape != (self.nrows,):
            raise ValidationError(
                f"column must have shape ({self.nrows},), got {col.shape}")
        rows = np.nonzero(np.abs(col) > tol)[0]
        self.add_column(rows, col[rows])

    def finalize(self) -> CSCMatrix:
        """Freeze into an immutable CSC matrix.  The builder is consumed."""
        if self._finalized:
            raise ValidationError("builder already finalized")
        self._finalized = True
        return CSCMatrix(self._data[:self._nnz].copy(),
                         self._indices[:self._nnz].copy(),
                         np.asarray(self._indptr, dtype=np.int64),
                         (self.nrows, self.ncols), check=False)

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Inventory of platform presets and dataset surrogates.
``tune``
    Run the platform-aware tuner on a dataset and print the Sec. VII
    tuning table.
``transform``
    Build an ExD transform (tuned or fixed-L) and save it to ``.npz``.
``pca``
    Top-k PCA through a transform, with the exact spectrum and the
    learning error (the Fig. 10/12 measurement for one configuration).

Input data is either a named surrogate (``--dataset salina``) or a
``.npy`` file of shape ``(M, N)`` (``--input``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import CostModel, ExtDict, exd_transform, save_transform, tune_dictionary_size
from repro.data import DATASETS, load_dataset
from repro.errors import ReproError
from repro.platform import PAPER_PLATFORM_NAMES, paper_platforms, platform_by_name
from repro.utils import format_table


def _load_matrix(args) -> np.ndarray:
    if getattr(args, "input", None):
        arr = np.load(args.input)
        if arr.ndim != 2:
            raise ReproError(
                f"--input must hold a 2-D array, got shape {arr.shape}")
        return np.asarray(arr, dtype=np.float64)
    return load_dataset(args.dataset, n=args.n, seed=args.seed).matrix


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=sorted(DATASETS),
                        default="salina",
                        help="named synthetic surrogate (default: salina)")
    parser.add_argument("--input", metavar="FILE.npy",
                        help="load the data matrix from a .npy file "
                             "instead of a surrogate")
    parser.add_argument("--n", type=int, default=1024,
                        help="surrogate column count (default: 1024)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default: 0)")
    parser.add_argument("--eps", type=float, default=0.1,
                        help="transformation error tolerance (default: 0.1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel encode/tuning workers: omit for "
                             "serial, -1 for all cores (results are "
                             "identical for every value)")


def cmd_info(_args) -> int:
    """Print platform presets and the dataset registry."""
    rows = [[c.name, c.nodes, c.cores_per_node, c.size,
             f"{c.machine.flop_rate / 1e9:.1f} GF/s"]
            for c in paper_platforms()]
    print(format_table(["platform", "nodes", "cores/node", "P",
                        "per-core rate"], rows,
                       title="Platform presets (paper Sec. VIII)"))
    print()
    rows = [[name, f"{e['paper_shape'][0]} x {e['paper_shape'][1]}",
             e["application"]] for name, e in sorted(DATASETS.items())]
    print(format_table(["dataset", "paper shape", "application"], rows,
                       title="Dataset surrogates (paper Table I)"))
    return 0


def cmd_tune(args) -> int:
    """Run the Sec. VII tuner and print the candidate table."""
    a = _load_matrix(args)
    cluster = platform_by_name(args.platform)
    model = CostModel(cluster)
    result = tune_dictionary_size(a, args.eps, model,
                                  objective=args.objective,
                                  seed=args.seed, workers=args.workers)
    rows = [[l, f"{alpha:.2f}", f"{nnz:.0f}", f"{cost:.4g}",
             "<-- L*" if l == result.best_size else ""]
            for l, alpha, nnz, cost in result.table]
    print(format_table(
        ["L", "alpha(L)", "predicted nnz(C)",
         f"{args.objective} cost (flop-equiv)", ""],
        rows, title=f"Tuning on {cluster.describe()}, eps={args.eps} "
                    f"(alpha estimated from {result.subset_columns} "
                    f"columns)"))
    return 0


def cmd_transform(args) -> int:
    """Build an ExD transform (tuned or fixed-L) and save it."""
    a = _load_matrix(args)
    if args.size is not None:
        transform, stats = exd_transform(a, args.size, args.eps,
                                         seed=args.seed,
                                         workers=args.workers)
    else:
        ext = ExtDict(eps=args.eps,
                      cluster=platform_by_name(args.platform),
                      objective=args.objective, seed=args.seed,
                      workers=args.workers).fit(a)
        transform, stats = ext.transform_, ext.stats_
    path = save_transform(transform, args.out)
    print(f"data {a.shape[0]}x{a.shape[1]} -> D {transform.m}x{transform.l}"
          f" + C with nnz={transform.nnz} (alpha={transform.alpha:.2f})")
    print(f"all columns met eps={args.eps}: {stats.all_converged}")
    print(f"saved transform to {path}")
    return 0


def cmd_pca(args) -> int:
    """Top-k PCA via the transform; report learning error."""
    from repro.apps import eigenvalue_error, exact_gram_eigenvalues, run_pca
    a = _load_matrix(args)
    cluster = platform_by_name(args.platform) if args.platform else None
    res = run_pca(a, args.k, method="extdict", eps=args.eps,
                  cluster=cluster, seed=args.seed, workers=args.workers)
    exact = exact_gram_eigenvalues(a, args.k)
    rows = [[i + 1, f"{exact[i]:.4g}", f"{res.eigenvalues[i]:.4g}"]
            for i in range(args.k)]
    print(format_table(["#", "exact", "ExtDict"], rows,
                       title=f"Top-{args.k} eigenvalues of A'A "
                             f"(eps={args.eps})"))
    print(f"normalised cumulative error: "
          f"{eigenvalue_error(res.eigenvalues, exact):.3e}")
    if cluster is not None:
        print(f"simulated runtime on {cluster.name}: "
              f"{res.simulated_time * 1e3:.3f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExtDict (IPDPS'17) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list platform presets and datasets")

    p_tune = sub.add_parser("tune", help="platform-aware dictionary tuning")
    _add_data_arguments(p_tune)
    p_tune.add_argument("--platform", choices=PAPER_PLATFORM_NAMES,
                        default="2x8")
    p_tune.add_argument("--objective",
                        choices=("time", "energy", "memory"),
                        default="time")

    p_tr = sub.add_parser("transform", help="build and save an ExD "
                                            "transform")
    _add_data_arguments(p_tr)
    p_tr.add_argument("--size", type=int,
                      help="fixed dictionary size (skips tuning)")
    p_tr.add_argument("--platform", choices=PAPER_PLATFORM_NAMES,
                      default="2x8")
    p_tr.add_argument("--objective",
                      choices=("time", "energy", "memory"),
                      default="time")
    p_tr.add_argument("--out", default="transform.npz",
                      help="output path (default: transform.npz)")

    p_pca = sub.add_parser("pca", help="top-k PCA through the transform")
    _add_data_arguments(p_pca)
    p_pca.add_argument("--k", type=int, default=5)
    p_pca.add_argument("--platform", choices=PAPER_PLATFORM_NAMES,
                       default=None,
                       help="simulate distributed execution on this "
                            "platform (default: serial)")

    return parser


_COMMANDS = {
    "info": cmd_info,
    "tune": cmd_tune,
    "transform": cmd_transform,
    "pca": cmd_pca,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Inventory of platform presets and dataset surrogates.
``ingest``
    Chunk a dataset (surrogate or ``.npy`` file) into an on-disk
    column store for out-of-core runs.
``tune``
    Run the platform-aware tuner on a dataset and print the Sec. VII
    tuning table; ``--sketch`` estimates α(L) from very sparse random
    projections of a column sample instead of exact subset encodes
    (a fraction of the bytes — see docs/online.md).
``transform``
    Build an ExD transform (tuned or fixed-L) and save it to ``.npz``;
    ``--fast-dict RC`` factors the sampled dictionary into a sparse
    fast transform before encoding.
``fit-fast``
    Factor a saved transform's dense dictionary into a
    :class:`~repro.core.fastdict.FastDict` post hoc and report the
    modeled apply speedup.
``pca``
    Top-k PCA through a transform, with the exact spectrum and the
    learning error (the Fig. 10/12 measurement for one configuration).
``serve``
    Long-lived HTTP encode service: loads fitted transforms, keeps
    their Gram matrices warm and micro-batches concurrent
    single-column encodes into shared-``G`` Batch-OMP calls
    (see :mod:`repro.serve`).
``maintain``
    Drift-aware online dictionary maintenance: stream minibatches
    from the data source, watch measured (α, error) against the
    fitted α(L) curve, refresh atoms with minibatch surrogate
    updates and re-seed dead ones (see :mod:`repro.online` and
    docs/online.md).

Input data is either a named surrogate (``--dataset salina``), a
``.npy`` file of shape ``(M, N)`` (``--input``), or — for ``tune`` and
``transform`` — a column store directory written by ``ingest``
(``--store``), which is processed out-of-core with optional resumable
checkpoints (``--checkpoint DIR``, ``--resume``).

Every subcommand accepts ``--metrics-json FILE`` (write the unified
:class:`~repro.observability.report.RunReport` — span timings, metric
counters, Gram-cache hits/misses, per-op MPI traffic, virtual-clock
totals — as JSON) and ``--profile`` (pretty-print the same report to
stdout).  Either flag switches the observability layer on for the run.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import observability
from repro.core import (
    CostModel,
    ExtDict,
    exd_transform,
    exd_transform_distributed,
    save_transform,
    tune_dictionary_size,
)
from repro.data import DATASETS, load_dataset
from repro.errors import ReproError
from repro.platform import PAPER_PLATFORM_NAMES, paper_platforms, platform_by_name
from repro.utils import format_table


def _load_matrix(args):
    if getattr(args, "store", None):
        from repro.store import ColumnStore

        if getattr(args, "input", None):
            raise ReproError("--store and --input are mutually exclusive")
        return ColumnStore.open(args.store)
    if getattr(args, "input", None):
        arr = np.load(args.input)
        if arr.ndim != 2:
            raise ReproError(
                f"--input must hold a 2-D array, got shape {arr.shape}")
        return np.asarray(arr, dtype=np.float64)
    return load_dataset(args.dataset, n=args.n, seed=args.seed).matrix


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=sorted(DATASETS),
                        default="salina",
                        help="named synthetic surrogate (default: salina)")
    parser.add_argument("--input", metavar="FILE.npy",
                        help="load the data matrix from a .npy file "
                             "instead of a surrogate")
    parser.add_argument("--n", type=int, default=1024,
                        help="surrogate column count (default: 1024)")
    parser.add_argument("--seed", type=int, default=0,
                        help="random seed (default: 0)")
    parser.add_argument("--eps", type=float, default=0.1,
                        help="transformation error tolerance (default: 0.1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel encode/tuning workers: omit for "
                             "serial, -1 for all cores (results are "
                             "identical for every value)")
    _add_backend_argument(parser)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="OMP kernel backend: 'numpy' (reference), "
                             "a compiled backend such as 'numba', or "
                             "'auto' to prefer whichever compiled "
                             "backend is importable (default: the "
                             "REPRO_OMP_BACKEND environment variable, "
                             "then 'numpy')")
    parser.add_argument("--mpi-backend", default=None,
                        choices=("threads", "processes", "auto"),
                        help="SPMD execution backend for emulated runs "
                             "(default: the REPRO_MPI_BACKEND "
                             "environment variable, then 'auto'); the "
                             "model accounting is identical either way "
                             "— see docs/mpi_backends.md")


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-json", metavar="FILE", default=None,
                        help="write the unified run report (metrics, "
                             "spans, MPI traffic, virtual clocks) as "
                             "JSON to FILE")
    parser.add_argument("--profile", action="store_true",
                        help="pretty-print the run report to stdout "
                             "after the command")


def cmd_info(_args) -> int:
    """Print platform presets and the dataset registry."""
    rows = [[c.name, c.nodes, c.cores_per_node, c.size,
             f"{c.machine.flop_rate / 1e9:.1f} GF/s"]
            for c in paper_platforms()]
    print(format_table(["platform", "nodes", "cores/node", "P",
                        "per-core rate"], rows,
                       title="Platform presets (paper Sec. VIII)"))
    print()
    rows = [[name, f"{e['paper_shape'][0]} x {e['paper_shape'][1]}",
             e["application"]] for name, e in sorted(DATASETS.items())]
    print(format_table(["dataset", "paper shape", "application"], rows,
                       title="Dataset surrogates (paper Table I)"))
    return 0


def cmd_tune(args) -> int:
    """Run the Sec. VII tuner and print the candidate table."""
    a = _load_matrix(args)
    cluster = platform_by_name(args.platform)
    model = CostModel(cluster)
    if args.sketch or args.sketch_dim or args.sketch_columns:
        from repro.core import SketchConfig, tune_dictionary_size_sketched

        cfg = SketchConfig(dim=args.sketch_dim,
                           columns=args.sketch_columns)
        result = tune_dictionary_size_sketched(
            a, args.eps, model, objective=args.objective,
            sketch=cfg, seed=args.seed, workers=args.workers)
        source = (f"alpha sketched from {result.sketch_columns} "
                  f"columns projected to k={result.sketch_dim} dims")
    else:
        result = tune_dictionary_size(a, args.eps, model,
                                      objective=args.objective,
                                      seed=args.seed, workers=args.workers)
        source = (f"alpha estimated from {result.subset_columns} "
                  f"columns")
    rows = [[l, f"{alpha:.2f}", f"{nnz:.0f}", f"{cost:.4g}",
             "<-- L*" if l == result.best_size else ""]
            for l, alpha, nnz, cost in result.table]
    print(format_table(
        ["L", "alpha(L)", "predicted nnz(C)",
         f"{args.objective} cost (flop-equiv)", ""],
        rows, title=f"Tuning on {cluster.describe()}, eps={args.eps} "
                    f"({source})"))
    if getattr(result, "bytes_read", 0):
        print(f"store bytes read for the sketch: "
              f"{result.bytes_read / 2**20:.2f} MiB "
              f"({result.chunks_read} chunks)")
    return 0


def cmd_ingest(args) -> int:
    """Chunk a dataset into an on-disk column store."""
    from repro.data import synthesize_to_store
    from repro.store import ColumnStore

    if args.input:
        arr = np.load(args.input)
        if arr.ndim != 2:
            raise ReproError(
                f"--input must hold a 2-D array, got shape {arr.shape}")
        store = ColumnStore.from_matrix(
            args.store, np.asarray(arr, dtype=np.float64),
            chunk_width=args.chunk_width, attrs={"source_file": args.input})
    else:
        store = synthesize_to_store(args.dataset, args.store, n=args.n,
                                    seed=args.seed,
                                    chunk_width=args.chunk_width)
    m, n = store.shape
    print(f"ingested {m}x{n} into {store.path} "
          f"({store.n_chunks} chunks of <= {store.chunk_width} columns, "
          f"{store.nbytes / 2**20:.1f} MiB)")
    return 0


def cmd_transform(args) -> int:
    """Build an ExD transform (tuned or fixed-L) and save it."""
    from repro.store import StreamingEncoder, is_column_store

    a = _load_matrix(args)
    streamed = is_column_store(a)
    if not streamed and (args.checkpoint or args.resume
                         or args.memory_budget_mb is not None
                         or args.block_width is not None):
        raise ReproError("--checkpoint/--resume/--memory-budget-mb/"
                         "--block-width require --store")
    if streamed and args.distributed and (args.checkpoint or args.resume
                                          or args.memory_budget_mb
                                          is not None):
        raise ReproError("--distributed streams each rank's shard "
                         "without checkpoints; it cannot be combined "
                         "with --checkpoint/--resume/--memory-budget-mb")
    if args.memory_budget_mb is not None and args.memory_budget_mb <= 0:
        raise ReproError(
            f"--memory-budget-mb must be positive, got "
            f"{args.memory_budget_mb}")
    budget = (int(args.memory_budget_mb * 2**20)
              if args.memory_budget_mb is not None else None)
    fast_cfg = None
    if args.fast_dict is not None:
        from repro.core.fastdict import FastDictConfig

        if args.distributed:
            raise ReproError("--fast-dict cannot be combined with "
                             "--distributed (the SPMD encode shares the "
                             "dense sampled dictionary across ranks)")
        fast_cfg = FastDictConfig(rc=args.fast_dict,
                                  levels=args.fast_levels)
    if args.size is not None:
        if args.distributed:
            # A ColumnStore input is rank-sharded: each emulated rank
            # streams only its shard_plan partition from disk.
            transform, stats, spmd = exd_transform_distributed(
                a, args.size, args.eps, platform_by_name(args.platform),
                seed=args.seed, workers=args.workers,
                block_width=args.block_width if streamed else None)
            print(f"simulated distributed encode on {args.platform}: "
                  f"{spmd.simulated_time * 1e3:.3f} ms "
                  f"(mpi backend: {spmd.backend})")
        elif streamed:
            encoder = StreamingEncoder(
                a, args.size, args.eps, seed=args.seed,
                workers=args.workers, memory_budget_bytes=budget,
                block_width=args.block_width,
                checkpoint_dir=args.checkpoint,
                fast_dict=fast_cfg)
            transform, stats, rep = encoder.run(resume=args.resume)
            print(f"streamed {rep.blocks_total} blocks of "
                  f"{rep.block_width} columns "
                  f"({rep.blocks_reused} reused from checkpoint); read "
                  f"{rep.chunks_read} chunks / "
                  f"{rep.bytes_read / 2**20:.1f} MiB, wrote "
                  f"{rep.checkpoints_written} checkpoints")
        else:
            transform, stats = exd_transform(a, args.size, args.eps,
                                             seed=args.seed,
                                             workers=args.workers,
                                             fast_dict=fast_cfg)
    elif args.distributed:
        raise ReproError("--distributed requires a fixed --size "
                         "(the distributed encoder skips tuning)")
    else:
        ext = ExtDict(eps=args.eps,
                      cluster=platform_by_name(args.platform),
                      objective=args.objective, seed=args.seed,
                      workers=args.workers,
                      memory_budget_bytes=budget,
                      block_width=args.block_width,
                      checkpoint_dir=args.checkpoint,
                      fast_dict=fast_cfg).fit(
                          a, resume=args.resume)
        transform, stats = ext.transform_, ext.stats_
    path = save_transform(transform, args.out)
    print(f"data {a.shape[0]}x{a.shape[1]} -> D {transform.m}x{transform.l}"
          f" + C with nnz={transform.nnz} (alpha={transform.alpha:.2f})")
    if "fastdict_rc" in transform.meta:
        dense_cost = transform.m * transform.l
        tnnz = transform.dictionary.transform_nnz
        print(f"fast dictionary: RC={transform.meta['fastdict_rc']:.3f} "
              f"(transform_nnz={tnnz}, modeled apply speedup "
              f"{dense_cost / tnnz:.2f}x), factorisation residual "
              f"{transform.meta['fastdict_residual']:.3e}")
    print(f"all columns met eps={args.eps}: {stats.all_converged}")
    print(f"saved transform to {path}")
    return 0


def cmd_fit_fast(args) -> int:
    """Factor a saved transform's dense dictionary into a FastDict."""
    from repro.core import load_transform
    from repro.core.dictionary import Dictionary
    from repro.core.fastdict import fit_fast_dict
    from repro.core.transform import TransformedData

    transform = load_transform(args.transform)
    if not isinstance(transform.dictionary, Dictionary):
        raise ReproError(
            f"{args.transform} already holds a factored dictionary "
            f"({type(transform.dictionary).__name__}); fit-fast needs a "
            f"dense one")
    fd = fit_fast_dict(transform.dictionary, rc=args.rc,
                       levels=args.levels, iters=args.iters,
                       seed=args.seed)
    meta = dict(transform.meta)
    meta["fastdict_rc"] = float(fd.relative_complexity)
    meta["fastdict_residual"] = float(fd.residual)
    updated = TransformedData(dictionary=fd,
                              coefficients=transform.coefficients,
                              eps=transform.eps, method=transform.method,
                              meta=meta)
    out = args.out or args.transform
    path = save_transform(updated, out)
    dense_cost = fd.m * fd.size
    print(f"D {fd.m}x{fd.size} -> {fd.levels} factors, "
          f"transform_nnz={fd.transform_nnz} "
          f"(RC={fd.relative_complexity:.3f}, requested {args.rc})")
    print(f"modeled apply speedup: {dense_cost / fd.transform_nnz:.2f}x; "
          f"factorisation residual |D-S1..SJ|_F/|D|_F = {fd.residual:.3e}")
    print(f"saved factored transform to {path}")
    return 0


def cmd_pca(args) -> int:
    """Top-k PCA via the transform; report learning error."""
    from repro.apps import eigenvalue_error, exact_gram_eigenvalues, run_pca
    a = _load_matrix(args)
    cluster = platform_by_name(args.platform) if args.platform else None
    res = run_pca(a, args.k, method="extdict", eps=args.eps,
                  cluster=cluster, seed=args.seed, workers=args.workers)
    exact = exact_gram_eigenvalues(a, args.k)
    # The power method may return fewer than k eigenpairs when deflation
    # exhausts the numerical spectrum (k > rank of the Gram matrix).
    kk = len(res.eigenvalues)
    rows = [[i + 1, f"{exact[i]:.4g}", f"{res.eigenvalues[i]:.4g}"]
            for i in range(kk)]
    print(format_table(["#", "exact", "ExtDict"], rows,
                       title=f"Top-{args.k} eigenvalues of A'A "
                             f"(eps={args.eps})"))
    if kk < args.k:
        print(f"note: spectrum exhausted after {kk} eigenpairs "
              f"(requested {args.k})")
    print(f"normalised cumulative error: "
          f"{eigenvalue_error(res.eigenvalues, exact[:kk]):.3e}")
    if cluster is not None:
        print(f"simulated runtime on {cluster.name}: "
              f"{res.simulated_time * 1e3:.3f} ms")
    return 0


def _parse_transform_spec(spec: str) -> tuple[str, str]:
    """Split a ``[tenant=]PATH`` --transform argument."""
    tenant, sep, path = spec.partition("=")
    if sep and tenant and "/" not in tenant and "\\" not in tenant:
        return tenant, path
    return "default", spec


def cmd_serve(args) -> int:
    """Run the long-lived encode service (see :mod:`repro.serve`)."""
    import asyncio

    from repro.serve import ServeApp

    if args.max_batch < 1:
        raise ReproError(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_queue < 1:
        raise ReproError(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.max_wait_ms < 0:
        raise ReproError(
            f"--max-wait-ms must be >= 0, got {args.max_wait_ms}")
    cost_model = (CostModel(platform_by_name(args.platform))
                  if args.platform else None)
    app = ServeApp(max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
                   max_queue=args.max_queue, timeout_ms=args.timeout_ms,
                   cost_model=cost_model, workers=args.workers,
                   backend=args.backend)
    for spec in args.transform or []:
        tenant, path = _parse_transform_spec(spec)
        gen = app.registry.load(tenant, path)
        print(f"loaded {path} as tenant {tenant!r} generation "
              f"{gen.number} (M={gen.transform.m}, L={gen.transform.l})")
    if not args.transform:
        print("warning: no --transform given; load dictionaries via "
              "POST /v1/dictionaries", file=sys.stderr)
    print(f"serving on http://{args.host}:{args.port} "
          f"(max_batch={app.batcher.max_batch}, "
          f"max_wait_ms={args.max_wait_ms})")
    try:
        asyncio.run(app.run_forever(args.host, args.port))
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_maintain(args) -> int:
    """Run the drift-aware online maintenance loop (docs/online.md)."""
    import json

    from repro.core import exd_transform, load_transform, save_transform
    from repro.online import MaintenanceConfig, OnlineMaintainer
    from repro.store import is_column_store
    from repro.store.column_store import take_columns

    a = _load_matrix(args)
    if args.transform:
        transform = load_transform(args.transform)
        print(f"maintaining {args.transform}: D {transform.m}x"
              f"{transform.l}, eps={transform.eps}")
    else:
        if args.size is None:
            raise ReproError(
                "maintain needs a dictionary: pass --transform FILE.npz "
                "or --size L to fit one from the data's leading columns")
        init = min(a.shape[1], args.init_columns)
        seed_cols = take_columns(a, np.arange(init)) \
            if is_column_store(a) \
            else np.asarray(a[:, :init], dtype=np.float64)
        transform, _ = exd_transform(seed_cols, args.size, args.eps,
                                     seed=args.seed, workers=args.workers)
        print(f"fitted initial D {transform.m}x{transform.l} from the "
              f"first {init} columns (eps={args.eps})")
    config = MaintenanceConfig(batch=args.batch,
                               refresh_every=args.refresh_every)
    maintainer = OnlineMaintainer(a, transform, config=config,
                                  seed=args.seed, workers=args.workers,
                                  backend=args.backend)
    try:
        for rep in maintainer.run(args.steps):
            notes = []
            if rep["drift_fired"]:
                notes.append("drift")
            if rep["atoms_refreshed"]:
                notes.append(f"refreshed {rep['atoms_refreshed']}")
            if rep["atoms_reseeded"]:
                notes.append(f"re-seeded {len(rep['atoms_reseeded'])}")
            if rep["retune_recommended"]:
                notes.append("re-tune recommended")
            print(f"step {rep['step']:>3}: alpha={rep['alpha']:.2f} "
                  f"error={rep['error']:.4f}"
                  + (f"  [{', '.join(notes)}]" if notes else ""))
        if args.out:
            path = save_transform(maintainer.build_generation(), args.out)
            print(f"saved maintained transform to {path}")
        if args.status_json:
            with open(args.status_json, "w", encoding="utf-8") as fh:
                json.dump(maintainer.status(), fh, indent=2)
            print(f"wrote maintenance status to {args.status_json}")
        else:
            usage = maintainer.status()["atom_usage"]
            print(f"atom usage: {usage['selections']} selections over "
                  f"{usage['columns']} columns, "
                  f"{usage['dead_atoms']} dead atoms")
    finally:
        maintainer.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ExtDict (IPDPS'17) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="list platform presets and "
                                         "datasets")
    _add_observability_arguments(p_info)

    p_ing = sub.add_parser("ingest", help="chunk a dataset into an "
                                          "on-disk column store")
    p_ing.add_argument("--dataset", choices=sorted(DATASETS),
                       default="salina",
                       help="named synthetic surrogate (default: salina)")
    p_ing.add_argument("--input", metavar="FILE.npy",
                       help="ingest a .npy matrix instead of a surrogate")
    p_ing.add_argument("--n", type=int, default=1024,
                       help="surrogate column count (default: 1024)")
    p_ing.add_argument("--seed", type=int, default=0,
                       help="surrogate random seed (default: 0)")
    p_ing.add_argument("--store", required=True, metavar="DIR",
                       help="output column-store directory")
    p_ing.add_argument("--chunk-width", type=int, default=256,
                       help="columns per store chunk (default: 256)")
    _add_observability_arguments(p_ing)

    p_tune = sub.add_parser("tune", help="platform-aware dictionary tuning")
    _add_data_arguments(p_tune)
    _add_observability_arguments(p_tune)
    p_tune.add_argument("--store", metavar="DIR", default=None,
                        help="tune on a column store (subset columns are "
                             "read from disk)")
    p_tune.add_argument("--platform", choices=PAPER_PLATFORM_NAMES,
                        default="2x8")
    p_tune.add_argument("--objective",
                        choices=("time", "energy", "memory"),
                        default="time")
    p_tune.add_argument("--sketch", action="store_true",
                        help="estimate alpha(L) from very sparse random "
                             "projections of a chunk-aligned column "
                             "sample instead of exact subset encodes "
                             "(reads a fraction of the bytes; see "
                             "docs/online.md)")
    p_tune.add_argument("--sketch-dim", type=int, default=None,
                        metavar="K",
                        help="projected row dimension (default: "
                             "max(16, M/4), capped at M); implies "
                             "--sketch")
    p_tune.add_argument("--sketch-columns", type=int, default=None,
                        metavar="COLS",
                        help="columns in the sketch sample (default: "
                             "the tuner's subset size); implies "
                             "--sketch")

    p_tr = sub.add_parser("transform", help="build and save an ExD "
                                            "transform")
    _add_data_arguments(p_tr)
    _add_observability_arguments(p_tr)
    p_tr.add_argument("--size", type=int,
                      help="fixed dictionary size (skips tuning)")
    p_tr.add_argument("--store", metavar="DIR", default=None,
                      help="encode a column store out-of-core (bit-"
                           "identical to the in-memory encode)")
    p_tr.add_argument("--checkpoint", metavar="DIR", default=None,
                      help="spill encoded blocks and a resumable "
                           "checkpoint manifest to DIR (requires "
                           "--store)")
    p_tr.add_argument("--resume", action="store_true",
                      help="resume an interrupted encode from "
                           "--checkpoint (bit-identical to an "
                           "uninterrupted run)")
    p_tr.add_argument("--memory-budget-mb", type=float, default=None,
                      help="cap the encode working set (MiB); sets the "
                           "streaming block width via the Eq. 4 memory "
                           "model")
    p_tr.add_argument("--block-width", type=int, default=None,
                      help="explicit streaming block width (multiple "
                           "of 256; overrides --memory-budget-mb)")
    p_tr.add_argument("--platform", choices=PAPER_PLATFORM_NAMES,
                      default="2x8")
    p_tr.add_argument("--objective",
                      choices=("time", "energy", "memory"),
                      default="time")
    p_tr.add_argument("--distributed", action="store_true",
                      help="encode on the emulated --platform cluster "
                           "(requires --size); populates MPI traffic "
                           "and virtual clocks in the run report")
    p_tr.add_argument("--fast-dict", type=float, default=None,
                      metavar="RC",
                      help="learn a sparse-factor fast-transform "
                           "dictionary with relative complexity RC in "
                           "(0, 1]: applying D costs ~RC*M*L instead "
                           "of M*L (see docs/fastdict.md)")
    p_tr.add_argument("--fast-levels", type=int, default=2, metavar="J",
                      help="number of sparse factors for --fast-dict "
                           "(default: 2)")
    p_tr.add_argument("--out", default="transform.npz",
                      help="output path (default: transform.npz)")

    p_ff = sub.add_parser("fit-fast", help="factor a saved transform's "
                                           "dictionary into a FastDict")
    _add_observability_arguments(p_ff)
    p_ff.add_argument("--transform", required=True, metavar="FILE.npz",
                      help="transform archive written by `transform`")
    p_ff.add_argument("--rc", type=float, default=0.25,
                      help="relative-complexity budget "
                           "nnz(S1..SJ)/(M*L) (default: 0.25)")
    p_ff.add_argument("--levels", type=int, default=2, metavar="J",
                      help="number of sparse factors (default: 2)")
    p_ff.add_argument("--iters", type=int, default=10,
                      help="alternating refinement sweeps (default: 10)")
    p_ff.add_argument("--seed", type=int, default=0,
                      help="factorisation init seed (default: 0)")
    p_ff.add_argument("--out", default=None, metavar="FILE.npz",
                      help="output path (default: overwrite the input)")

    p_srv = sub.add_parser("serve", help="run the low-latency encode "
                                         "service")
    _add_observability_arguments(p_srv)
    p_srv.add_argument("--transform", action="append", default=None,
                       metavar="[TENANT=]FILE.npz",
                       help="fitted transform to load at startup "
                            "(repeatable; tenant defaults to 'default')")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8000)
    p_srv.add_argument("--max-batch", type=int, default=64,
                       help="largest coalesced encode batch (default: 64)")
    p_srv.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="batching window after the first request "
                            "(default: 2.0; 0 disables coalescing)")
    p_srv.add_argument("--timeout-ms", type=float, default=1000.0,
                       help="default per-request deadline (default: 1000)")
    p_srv.add_argument("--max-queue", type=int, default=512,
                       help="queued requests before 429 backpressure "
                            "(default: 512)")
    p_srv.add_argument("--platform", choices=PAPER_PLATFORM_NAMES,
                       default=None,
                       help="bill per-tenant Eq. 2/3 costs against this "
                            "platform's cost model")
    p_srv.add_argument("--workers", type=int, default=None,
                       help="Batch-OMP workers per coalesced batch "
                            "(default: serial; results are identical)")
    _add_backend_argument(p_srv)

    p_mnt = sub.add_parser("maintain", help="drift-aware online "
                                            "dictionary maintenance")
    _add_data_arguments(p_mnt)
    _add_observability_arguments(p_mnt)
    p_mnt.add_argument("--store", metavar="DIR", default=None,
                       help="maintain against a column store (the "
                            "append generation counter drives "
                            "fresh-data biasing)")
    p_mnt.add_argument("--transform", metavar="FILE.npz", default=None,
                       help="fitted transform to maintain (written by "
                            "`transform`); without it, --size fits an "
                            "initial dictionary from the data's "
                            "leading columns")
    p_mnt.add_argument("--size", type=int, default=None,
                       help="dictionary size for the initial fit "
                            "(ignored with --transform)")
    p_mnt.add_argument("--init-columns", type=int, default=2048,
                       help="leading columns used for the initial fit "
                            "(default: 2048)")
    p_mnt.add_argument("--steps", type=int, default=10,
                       help="maintenance steps to run (default: 10)")
    p_mnt.add_argument("--batch", type=int, default=256,
                       help="minibatch columns per step (default: 256)")
    p_mnt.add_argument("--refresh-every", type=int, default=1,
                       help="block-coordinate atom refresh cadence in "
                            "steps (default: 1; drift always triggers "
                            "a refresh)")
    p_mnt.add_argument("--out", metavar="FILE.npz", default=None,
                       help="save the maintained dictionary as a new "
                            "transform generation")
    p_mnt.add_argument("--status-json", metavar="FILE", default=None,
                       help="write the final maintainer status digest "
                            "as JSON")

    p_pca = sub.add_parser("pca", help="top-k PCA through the transform")
    _add_data_arguments(p_pca)
    _add_observability_arguments(p_pca)
    p_pca.add_argument("--k", type=int, default=5)
    p_pca.add_argument("--platform", choices=PAPER_PLATFORM_NAMES,
                       default=None,
                       help="simulate distributed execution on this "
                            "platform (default: serial)")

    return parser


_COMMANDS = {
    "info": cmd_info,
    "ingest": cmd_ingest,
    "tune": cmd_tune,
    "transform": cmd_transform,
    "fit-fast": cmd_fit_fast,
    "pca": cmd_pca,
    "serve": cmd_serve,
    "maintain": cmd_maintain,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    observe = bool(getattr(args, "metrics_json", None)
                   or getattr(args, "profile", False))
    if observe:
        observability.reset()
        observability.enable()
    try:
        # Make --backend the process default for the whole command so
        # every encode it runs (including fork workers, which inherit
        # the resolved name) uses the requested kernel.  ``use_backend``
        # validates eagerly and restores the prior default on exit.
        from repro.linalg.kernels import use_backend
        from repro.mpi import set_default_mpi_backend

        # --mpi-backend installs the process-wide SPMD backend default
        # (argument > this default > REPRO_MPI_BACKEND > auto).
        set_default_mpi_backend(getattr(args, "mpi_backend", None))
        with use_backend(getattr(args, "backend", None)):
            return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        set_default_mpi_backend(None)
        if observe:
            report = observability.collect_report(
                command=args.command,
                argv=list(argv) if argv is not None else sys.argv[1:])
            if args.metrics_json:
                report.save(args.metrics_json)
                print(f"wrote run report to {args.metrics_json}",
                      file=sys.stderr)
            if args.profile:
                print(report.pretty())
            observability.disable()

"""Spectral graph partitioning with the Power method.

One of the paper's named Power-method applications (Sec. II-A cites
spectral partitioning [14]).  The Fiedler vector — the eigenvector of
the graph Laplacian's second-smallest eigenvalue — is obtained by power
iteration on the *complement* operator ``c·I − L`` with deflation of the
trivial constant eigenvector, so the same machinery that drives the PCA
application partitions graphs.

Graphs may be given as dense adjacency arrays or ``networkx`` graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.linalg.power_iteration import power_iteration


def _as_adjacency(graph) -> np.ndarray:
    if isinstance(graph, np.ndarray):
        adj = np.asarray(graph, dtype=np.float64)
    else:
        try:
            import networkx as nx
        except ImportError as exc:  # pragma: no cover - nx is a test dep
            raise ValidationError(
                "pass an adjacency ndarray or install networkx") from exc
        if not isinstance(graph, nx.Graph):
            raise ValidationError(
                f"expected ndarray or networkx.Graph, got {type(graph)}")
        adj = nx.to_numpy_array(graph, dtype=np.float64)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise ValidationError(f"adjacency must be square, got {adj.shape}")
    if not np.allclose(adj, adj.T):
        raise ValidationError("adjacency must be symmetric")
    if np.any(adj < 0):
        raise ValidationError("edge weights must be non-negative")
    return adj


def fiedler_vector(graph, *, tol: float = 1e-9, max_iter: int = 2000,
                   seed=None) -> tuple[float, np.ndarray]:
    """Second-smallest Laplacian eigenpair ``(λ₂, v₂)`` by power iteration.

    Uses the spectral complement ``c·I − L`` (``c = 2·max degree`` bounds
    ``λ_max(L)``) so the smallest Laplacian eigenvalues become dominant,
    and deflates the constant vector (λ=0).
    """
    adj = _as_adjacency(graph)
    n = adj.shape[0]
    if n < 2:
        raise ValidationError("graph needs at least 2 nodes")
    degrees = adj.sum(axis=1)
    laplacian_diag = degrees
    c = 2.0 * float(degrees.max()) + 1.0
    ones = np.full((n, 1), 1.0 / np.sqrt(n))

    def complement_op(x: np.ndarray) -> np.ndarray:
        # (c·I − L) x = c·x − D x + W x
        return c * x - laplacian_diag * x + adj @ x

    lam_c, vec, _ = power_iteration(complement_op, n, tol=tol,
                                    max_iter=max_iter, seed=seed,
                                    deflate_basis=ones)
    lam2 = c - lam_c
    # Clean residual constant component and normalise sign for
    # reproducibility.
    vec = vec - ones[:, 0] * float(ones[:, 0] @ vec)
    norm = np.linalg.norm(vec)
    if norm > 0:
        vec = vec / norm
    if vec[np.argmax(np.abs(vec))] < 0:
        vec = -vec
    return float(lam2), vec


def spectral_bisection(graph, *, tol: float = 1e-9, max_iter: int = 2000,
                       seed=None) -> np.ndarray:
    """Two-way partition labels from the Fiedler vector's sign."""
    _, vec = fiedler_vector(graph, tol=tol, max_iter=max_iter, seed=seed)
    labels = (vec >= np.median(vec)).astype(np.int64)
    # Guard against an empty side when the median sits on a plateau.
    if labels.min() == labels.max():
        labels = (vec >= vec.mean()).astype(np.int64)
    return labels


def cut_size(graph, labels) -> float:
    """Total weight of edges crossing the partition."""
    adj = _as_adjacency(graph)
    labels = np.asarray(labels)
    if labels.shape != (adj.shape[0],):
        raise ValidationError(
            f"labels must have length {adj.shape[0]}, got {labels.shape}")
    cross = labels[:, None] != labels[None, :]
    return float(adj[cross].sum() / 2.0)

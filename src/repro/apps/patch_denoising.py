"""Patch-based image denoising with a sampled dictionary.

The classical sparse-coding denoiser: a dictionary of clean image
patches, per-patch OMP with a noise-calibrated tolerance, and
overlap-averaged reconstruction.  Complements the global LASSO
formulation of :mod:`repro.apps.denoising` — this is the pipeline the
light-field "denoised pixels" dataset of the paper serves — and reuses
the exact same Batch-OMP machinery as ExD (the dictionary *is* a random
patch subsample, i.e. an ExD dictionary over the patch domain).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.images import image_to_patches, patches_to_image
from repro.errors import ValidationError
from repro.linalg.omp import batch_omp_matrix
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int


@dataclass
class PatchDenoiseResult:
    """Denoised image plus coding statistics."""

    image: np.ndarray
    atoms_used_per_patch: float
    patches: int
    meta: dict = field(default_factory=dict)


def build_patch_dictionary(images, patch: int, size: int, *,
                           stride: int | None = None,
                           seed=None) -> np.ndarray:
    """Sample ``size`` normalised patch atoms from clean images.

    Atoms are mean-removed (the DC component is handled separately by
    the denoiser) and ℓ2-normalised; a constant atom is prepended so
    flat patches stay representable.
    """
    size = check_positive_int(size, "size")
    pool = [image_to_patches(np.asarray(img, dtype=np.float64), patch,
                             stride or max(patch // 2, 1))
            for img in images]
    if not pool:
        raise ValidationError("need at least one clean image")
    patches = np.concatenate(pool, axis=1)
    if size > patches.shape[1]:
        raise ValidationError(
            f"cannot sample {size} atoms from {patches.shape[1]} patches")
    rng = as_generator(seed)
    idx = rng.choice(patches.shape[1], size=size, replace=False)
    atoms = patches[:, idx] - patches[:, idx].mean(axis=0, keepdims=True)
    norms = np.linalg.norm(atoms, axis=0)
    keep = norms > 1e-8
    atoms = atoms[:, keep] / norms[keep]
    m = patch * patch
    dc = np.full((m, 1), 1.0 / np.sqrt(m))
    return np.concatenate([dc, atoms], axis=1)


def denoise_image_patches(noisy: np.ndarray, dictionary: np.ndarray, *,
                          patch: int, stride: int = 1,
                          noise_sigma: float | None = None,
                          gain: float = 1.1,
                          max_atoms: int | None = None) -> PatchDenoiseResult:
    """Denoise by sparse-coding every (overlapping) patch.

    Parameters
    ----------
    noise_sigma:
        Per-pixel noise std.  When given, each patch is coded to the
        absolute residual target ``gain · σ · patch`` (the classical
        K-SVD denoising rule) — expressed through Batch-OMP's relative
        tolerance per column.  When ``None`` it is estimated from the
        median absolute deviation of the noisy image's fine detail.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    if noisy.ndim != 2:
        raise ValidationError(f"image must be 2-D, got {noisy.ndim}-D")
    if dictionary.shape[0] != patch * patch:
        raise ValidationError(
            f"dictionary rows {dictionary.shape[0]} != patch^2 "
            f"{patch * patch}")
    if noise_sigma is None:
        noise_sigma = estimate_noise_sigma(noisy)
    patches = image_to_patches(noisy, patch, stride)
    means = patches.mean(axis=0, keepdims=True)
    centred = patches - means
    target = gain * noise_sigma * patch  # ‖r‖₂ target per patch
    norms = np.linalg.norm(centred, axis=0)
    # Per-column relative tolerance that realises the absolute target.
    # Columns quieter than the noise floor are all noise: code nothing.
    coded = np.zeros_like(centred)
    active = norms > target
    total_atoms = 0
    if np.any(active):
        sub = centred[:, active]
        eps_cols = np.clip(target / norms[active], 1e-6, 1.0)
        # Batch-OMP takes one eps; group columns by quantised tolerance
        # to stay vectorised without per-column solver calls.
        buckets = np.round(np.log10(eps_cols) * 8).astype(int)
        for b in np.unique(buckets):
            cols = np.nonzero(buckets == b)[0]
            eps_b = float(10 ** (b / 8.0))
            c, stats = batch_omp_matrix(dictionary, sub[:, cols],
                                        min(max(eps_b, 1e-6), 1.0),
                                        max_atoms=max_atoms)
            coded_cols = dictionary @ c.to_dense()
            full_idx = np.nonzero(active)[0][cols]
            coded[:, full_idx] = coded_cols
            total_atoms += c.nnz
    restored = coded + means
    image = patches_to_image(restored, noisy.shape, patch, stride)
    n_patches = patches.shape[1]
    return PatchDenoiseResult(
        image=image,
        atoms_used_per_patch=total_atoms / max(n_patches, 1),
        patches=n_patches,
        meta={"noise_sigma": noise_sigma, "target": target,
              "active_fraction": float(np.mean(active))})


def estimate_noise_sigma(noisy: np.ndarray) -> float:
    """Robust noise estimate from the high-frequency residual (MAD).

    Uses the horizontal first difference: for white noise of std σ the
    difference has std σ√2, and MAD/0.6745 estimates the std robustly
    against image structure.
    """
    noisy = np.asarray(noisy, dtype=np.float64)
    detail = np.diff(noisy, axis=1).ravel()
    mad = float(np.median(np.abs(detail - np.median(detail))))
    return mad / 0.6745 / np.sqrt(2.0)

"""Time-to-target-quality instrumentation (for the Fig. 9 comparison).

The paper compares *total* runtime to convergence: ExtDict's exact
gradient descent needs far fewer iterations than SGD, whose minibatch
gradients plateau at a noise floor.  Because the solvers are
deterministic given a seed, we can

1. replay the iteration trajectory serially with a callback and find
   the first iteration whose reconstruction error reaches the target;
2. measure the *per-iteration* simulated cost of the same method on the
   emulated platform (a short distributed run);
3. report ``iterations_to_target × per-iteration simulated time``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.dense import DenseGramOperator, LocalDenseGramWorker
from repro.baselines.sgd import distributed_sgd_lasso, sgd_lasso
from repro.core.exd import exd_transform
from repro.core.gram import LocalGramWorker, TransformedGramOperator
from repro.errors import ValidationError
from repro.solvers.distributed import distributed_lasso
from repro.solvers.lasso import lasso_gd
from repro.utils.validation import check_in


@dataclass
class TimeToTarget:
    """Convergence-time measurement for one method."""

    method: str
    target_error: float
    iterations: int            # first iteration reaching the target
    reached: bool
    per_iteration_seconds: float
    total_seconds: float       # iterations × per-iteration simulated time
    final_error: float


def regression_time_to_target(a, y, reference_error, target: float, *,
                              method: str = "extdict", cluster=None,
                              eps: float = 0.01,
                              dictionary_size: int | None = None,
                              lam: float = 1e-3, lr: float = 0.5,
                              max_iter: int = 3000, sgd_batch: int = 64,
                              probe_iters: int = 5, check_every: int = 10,
                              seed=0) -> TimeToTarget:
    """Measure simulated time for ``method`` to reach ``target`` error.

    "Reach" means *sustained*: the first checkpoint after which the
    error never exceeds the target again — SGD's stochastic iterates
    dip below a threshold transiently long before they stabilise there,
    and a transient touch is not convergence.

    Parameters
    ----------
    reference_error:
        Callable ``x -> float`` scoring a solution (e.g. relative
        reconstruction error against the clean signal).
    probe_iters:
        Length of the short distributed run used to price one iteration.
    check_every:
        Trajectory sampling period (iterations) for the error watcher.
    """
    check_in(method, "method", ("extdict", "dense", "sgd"))
    if cluster is None:
        raise ValidationError("time-to-target needs a cluster to price "
                              "iterations on")
    a = np.asarray(a, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    n = a.shape[1]

    trajectory: list[tuple[int, float]] = []

    def watch(it: int, x: np.ndarray) -> None:
        if it % check_every == 0 or it == max_iter:
            trajectory.append((it, float(reference_error(x))))

    # Phase 1: serial trajectory replay with the watcher.
    if method == "sgd":
        sgd_lasso(a, y, lam, batch=sgd_batch, lr=lr, max_iter=max_iter,
                  tol=0.0, seed=seed, callback=watch)
    else:
        if method == "extdict":
            transform, _ = exd_transform(a, dictionary_size or
                                         min(max(a.shape[0] // 4, 64), n),
                                         eps, seed=seed)
            op = TransformedGramOperator(transform)
            aty = transform.project_adjoint(y)
        else:
            op = DenseGramOperator(a)
            aty = a.T @ y
        lasso_gd(op, aty, n, lam, lr=lr, max_iter=max_iter, tol=0.0,
                 callback=watch)

    # Phase 2: price one iteration on the platform.
    if method == "sgd":
        res = distributed_sgd_lasso(a, y, lam, cluster, batch=sgd_batch,
                                    lr=lr, max_iter=probe_iters, tol=0.0,
                                    seed=seed)
        per_iter = res.spmd.simulated_time / probe_iters
    else:
        if method == "extdict":
            d, c = transform.dictionary.atoms, transform.coefficients

            def factory(comm):
                return LocalGramWorker(comm, d, c)
        else:
            def factory(comm):
                return LocalDenseGramWorker(comm, a)
        _, spmd = distributed_lasso(cluster, factory, y, lam, lr=lr,
                                    max_iter=probe_iters, tol=0.0)
        per_iter = spmd.simulated_time / probe_iters

    # Sustained hit: last checkpoint above target marks the boundary.
    reached = bool(trajectory) and trajectory[-1][1] <= target
    iters = max_iter
    if reached:
        iters = trajectory[0][0]
        for it, err in reversed(trajectory):
            if err > target:
                break
            iters = it
    final = trajectory[-1][1] if trajectory else float("inf")
    return TimeToTarget(method=method, target_error=target,
                        iterations=iters, reached=reached,
                        per_iteration_seconds=per_iter,
                        total_seconds=iters * per_iter,
                        final_error=final)

"""Image denoising with LASSO (paper Sec. VIII-A).

Formulation: ``y`` is a noisy image (vectorised), ``A`` a corpus of
clean image atoms; solving ``min_x ‖Ax − y‖² + λ‖x‖₁`` and
reconstructing ``Ax`` denoises ``y`` because the clean signal is (near-)
sparsely representable over the corpus while the noise is not.

The synthetic corpus mirrors the paper's Light-Field pixel dataset: its
columns are sparse mixtures of a small bank of base images, so the
corpus itself is union-of-low-rank — the property ExD exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.dense import LocalDenseGramWorker
from repro.baselines.sgd import distributed_sgd_lasso
from repro.core.exd import exd_transform
from repro.core.gram import LocalGramWorker
from repro.data.images import add_noise_snr, psnr, synthetic_image
from repro.errors import ValidationError
from repro.solvers.distributed import distributed_lasso
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_in


@dataclass
class DenoisingSetup:
    """One denoising problem instance.

    Attributes
    ----------
    a:
        Clean-atom corpus, shape ``(M, N)`` (M = pixels).
    y_clean / y_noisy:
        Ground truth and its noisy observation (length M).
    image_shape:
        For viewing the vectors as images.
    """

    a: np.ndarray
    y_clean: np.ndarray
    y_noisy: np.ndarray
    image_shape: tuple
    meta: dict = field(default_factory=dict)


@dataclass
class AppRunResult:
    """Outcome of one application run (shared by denoising / super-res).

    ``simulated_time``/``simulated_energy`` are zero for serial runs.
    """

    method: str
    x: np.ndarray
    reconstruction: np.ndarray
    psnr_db: float
    reconstruction_error: float
    iterations: int
    converged: bool
    simulated_time: float = 0.0
    simulated_energy: float = 0.0
    preprocessing: dict = field(default_factory=dict)


def make_denoising_setup(*, image_size: int = 24, n_atoms: int = 384,
                         n_bases: int = 12, mixture_sparsity: int = 3,
                         snr_db: float = 20.0, seed=None) -> DenoisingSetup:
    """Synthesise a corpus + noisy target.

    Corpus column j = sparse non-negative mixture of ``mixture_sparsity``
    base images (plus 1% model noise); the target is another such
    mixture, observed at ``snr_db``.
    """
    if mixture_sparsity < 1 or mixture_sparsity > n_bases:
        raise ValidationError(
            f"mixture_sparsity must be in [1, {n_bases}], "
            f"got {mixture_sparsity}")
    rng = as_generator(seed)
    m = image_size * image_size
    bases = np.stack([synthetic_image(image_size,
                                      seed=derive_seed(seed, 10 + i)).ravel()
                      for i in range(n_bases)], axis=1)

    def mixture(k: int, gen) -> np.ndarray:
        picks = gen.choice(n_bases, size=k, replace=False)
        weights = gen.uniform(0.3, 1.0, size=k)
        return bases[:, picks] @ weights

    a = np.stack([mixture(mixture_sparsity, rng) for _ in range(n_atoms)],
                 axis=1)
    a += 0.01 * rng.standard_normal((m, n_atoms))
    y_clean = mixture(mixture_sparsity, rng)
    y_noisy = add_noise_snr(y_clean, snr_db, seed=derive_seed(seed, 99))
    return DenoisingSetup(a=a, y_clean=y_clean, y_noisy=y_noisy,
                          image_shape=(image_size, image_size),
                          meta={"snr_db": snr_db, "n_bases": n_bases})


def run_denoising(setup: DenoisingSetup, *, method: str = "extdict",
                  eps: float = 0.01, dictionary_size: int | None = None,
                  cluster=None, lam: float = 1e-3, lr: float = 0.2,
                  max_iter: int = 300, tol: float = 1e-5,
                  sgd_batch: int = 64, seed=0) -> AppRunResult:
    """Denoise ``setup.y_noisy`` with the chosen method.

    ``method`` is "extdict" (transform + distributed GD), "dense"
    (raw-AᵀA distributed GD) or "sgd" (distributed minibatch SGD).
    A serial fallback runs when ``cluster`` is None.
    """
    check_in(method, "method", ("extdict", "dense", "sgd"))
    a, y = setup.a, setup.y_noisy
    preprocessing: dict = {}

    if method == "sgd":
        if cluster is None:
            from repro.baselines.sgd import sgd_lasso
            res = sgd_lasso(a, y, lam, batch=sgd_batch, lr=lr,
                            max_iter=max_iter, tol=tol, seed=seed)
            sim_t = sim_e = 0.0
        else:
            res = distributed_sgd_lasso(a, y, lam, cluster, batch=sgd_batch,
                                        lr=lr, max_iter=max_iter, tol=tol,
                                        seed=seed)
            sim_t, sim_e = res.spmd.simulated_time, res.spmd.simulated_energy
        x, iters, conv = res.x, res.iterations, res.converged
    else:
        if method == "extdict":
            size = dictionary_size or min(max(a.shape[0] // 2, 64),
                                          a.shape[1])
            transform, stats = exd_transform(a, size, eps, seed=seed)
            preprocessing = {"dictionary_size": transform.l,
                             "alpha": transform.alpha,
                             "omp_iterations": stats.omp_iterations}
            d, c = transform.dictionary.atoms, transform.coefficients

            def factory(comm):
                return LocalGramWorker(comm, d, c)
        else:
            def factory(comm):
                return LocalDenseGramWorker(comm, a)

        if cluster is None:
            from repro.solvers.lasso import lasso_gd
            if method == "extdict":
                from repro.core.gram import TransformedGramOperator
                op = TransformedGramOperator(transform)
                aty = transform.project_adjoint(y)
            else:
                from repro.baselines.dense import DenseGramOperator
                op = DenseGramOperator(a)
                aty = a.T @ y
            res = lasso_gd(op, aty, a.shape[1], lam, lr=lr,
                           max_iter=max_iter, tol=tol)
            sim_t = sim_e = 0.0
        else:
            res, spmd = distributed_lasso(cluster, factory, y, lam, lr=lr,
                                          max_iter=max_iter, tol=tol)
            sim_t, sim_e = spmd.simulated_time, spmd.simulated_energy
        x, iters, conv = res.x, res.iterations, res.converged

    reconstruction = a @ x
    err = float(np.linalg.norm(setup.y_clean - reconstruction) /
                max(np.linalg.norm(setup.y_clean), 1e-30))
    return AppRunResult(
        method=method, x=x, reconstruction=reconstruction,
        psnr_db=psnr(setup.y_clean, reconstruction),
        reconstruction_error=err, iterations=iters, converged=conv,
        simulated_time=sim_t, simulated_energy=sim_e,
        preprocessing=preprocessing)

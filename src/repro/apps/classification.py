"""Least-squares SVM classification through the Gram operator.

The paper motivates ExtDict with "interior point methods for solving
Support Vector Machines" among the Gram-iterative algorithms
(Sec. II-A).  The least-squares SVM [Suykens & Vandewalle 1999] is the
member of that family that reduces *exactly* to Gram-operator linear
algebra: with a linear kernel over data columns, training solves

    (AᵀA + I/γ) β = y_labels      (bias handled by feature augmentation)

which conjugate gradients solve using one Gram update per iteration —
i.e. the operator ExtDict accelerates.  Prediction of a new column x is
``sign(βᵀ (Aᵀ x) + b)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.gram import TransformedGramOperator
from repro.errors import ValidationError
from repro.solvers.conjugate_gradient import conjugate_gradient
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_matrix, check_vector


@dataclass
class LSSVMModel:
    """Trained dual coefficients plus the training columns.

    ``decision(x)`` evaluates ``Σ_j β_j ⟨a_j, x⟩ + b``.
    """

    beta: np.ndarray
    bias: float
    training_columns: np.ndarray
    meta: dict = field(default_factory=dict)

    def decision(self, x) -> np.ndarray:
        """Decision values for columns of ``x`` (shape ``(M, n)``)."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[:, None]
        if x.shape[0] != self.training_columns.shape[0]:
            raise ValidationError(
                f"feature dimension {x.shape[0]} != training "
                f"{self.training_columns.shape[0]}")
        scores = self.beta @ (self.training_columns.T @ x) + self.bias
        return scores[0] if single else scores

    def predict(self, x) -> np.ndarray:
        """±1 labels for columns of ``x``."""
        return np.sign(self.decision(x))


def train_ls_svm(a, labels, *, gamma: float = 10.0,
                 gram_op=None, tol: float = 1e-8,
                 max_iter: int = 500) -> LSSVMModel:
    """Train a linear LS-SVM on data columns with ±1 labels.

    Parameters
    ----------
    a:
        Data matrix ``(M, N)`` — one training sample per column.
    labels:
        Length-N array of ±1.
    gamma:
        Regularisation (larger = harder margin).
    gram_op:
        Optional operator ``x -> AᵀA x`` replacing the exact Gram —
        pass a :class:`~repro.core.gram.TransformedGramOperator` to
        train through the ExD transform.
    """
    a = check_matrix(a, "A")
    y = check_vector(labels, "labels", size=a.shape[1])
    if not np.all(np.isin(y, (-1.0, 1.0))):
        raise ValidationError("labels must be +1 / -1")
    if gamma <= 0:
        raise ValidationError(f"gamma must be positive, got {gamma}")
    n = a.shape[1]
    op = gram_op if gram_op is not None else (lambda v: a.T @ (a @ v))

    # Centre the labels to absorb the bias (simple intercept handling:
    # b is recovered as the mean residual).
    result = conjugate_gradient(op, y, n, lam=1.0 / gamma, tol=tol,
                                max_iter=max_iter)
    beta = result.x
    scores = a.T @ (a @ beta)
    bias = float(np.mean(y - scores))
    return LSSVMModel(beta=beta, bias=bias, training_columns=a.copy(),
                      meta={"gamma": gamma, "cg_iterations":
                            result.iterations,
                            "cg_converged": result.converged})


def train_ls_svm_transformed(transform, labels, *, gamma: float = 10.0,
                             tol: float = 1e-8,
                             max_iter: int = 500) -> LSSVMModel:
    """LS-SVM trained on ``(DC)ᵀDC`` instead of the exact Gram."""
    op = TransformedGramOperator(transform)
    recon = transform.reconstruct()
    return train_ls_svm(recon, labels, gamma=gamma, gram_op=op, tol=tol,
                        max_iter=max_iter)


def make_classification_problem(m: int = 32, n: int = 200, *,
                                margin: float = 1.0, noise: float = 0.1,
                                seed=None):
    """Two linearly separable clouds as data columns.

    Returns ``(A, labels, (w, b))`` with the generating hyperplane.
    """
    if m < 2 or n < 4:
        raise ValidationError(f"need m >= 2 and n >= 4, got {m}, {n}")
    rng = as_generator(seed)
    w = rng.standard_normal(m)
    w /= np.linalg.norm(w)
    labels = np.where(rng.random(n) < 0.5, 1.0, -1.0)
    base = rng.standard_normal((m, n))
    base -= np.outer(w, w @ base)           # project onto the boundary
    offset = np.outer(w, labels * (margin + rng.gamma(2.0, 0.5, size=n)))
    a = base + offset + noise * rng.standard_normal((m, n))
    return a, labels, (w, 0.0)

"""Image super-resolution with LASSO on a light-field dataset.

Paper scenario (Sec. VIII-A): ``A_lf`` is built from 8×8 patches of a
5×5 light-field camera array (1600 rows).  The observation ``y`` comes
from only a 3×3 camera subset (576 rows).  Solving LASSO with the
row-restricted ``A = A_lf[rows]`` gives a sparse code ``x`` whose
*full-row* reconstruction ``A_lf x`` super-resolves ``y`` back to the
complete 5×5 stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.denoising import AppRunResult
from repro.baselines.dense import LocalDenseGramWorker
from repro.baselines.sgd import distributed_sgd_lasso
from repro.core.exd import exd_transform
from repro.core.gram import LocalGramWorker
from repro.data.images import psnr
from repro.data.lightfield import camera_subset_rows, lightfield_patches
from repro.errors import ValidationError
from repro.solvers.distributed import distributed_lasso
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_in


@dataclass
class SuperResolutionSetup:
    """One super-resolution problem instance.

    Attributes
    ----------
    a_full:
        Full light-field dataset ``(M_full, N)`` (e.g. 1600 rows).
    rows:
        Row indices of the observed camera subset.
    y_full / y_low:
        Ground-truth full stack and its low-resolution observation.
    """

    a_full: np.ndarray
    rows: np.ndarray
    y_full: np.ndarray
    y_low: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def a_low(self) -> np.ndarray:
        """The row-restricted dataset used by the solver."""
        return self.a_full[self.rows]


def make_super_resolution_setup(*, cams: int = 5, cams_sub: int = 3,
                                patch: int = 8, image_size: int = 40,
                                n_images: int = 3, stride: int = 4,
                                target_sparsity: int = 4,
                                noise: float = 0.01,
                                seed=None) -> SuperResolutionSetup:
    """Build the light-field dataset and a held-out target stack.

    The target is a sparse mixture of dataset columns (plus noise), so a
    correct LASSO solve genuinely recovers the unseen 16 camera views.
    """
    if cams_sub > cams:
        raise ValidationError(f"cams_sub {cams_sub} > cams {cams}")
    rng = as_generator(derive_seed(seed, 0))
    a_full = lightfield_patches(cams=cams, patch=patch,
                                image_size=image_size, n_images=n_images,
                                stride=stride, seed=derive_seed(seed, 1))
    n = a_full.shape[1]
    picks = rng.choice(n, size=min(target_sparsity, n), replace=False)
    weights = rng.uniform(0.4, 1.0, size=picks.size)
    y_full = a_full[:, picks] @ weights
    if noise > 0:
        y_full = y_full + noise * float(np.std(y_full)) * \
            rng.standard_normal(y_full.shape)
    rows = camera_subset_rows(cams_full=cams, cams_sub=cams_sub, patch=patch)
    return SuperResolutionSetup(
        a_full=a_full, rows=rows, y_full=y_full, y_low=y_full[rows],
        meta={"cams": cams, "cams_sub": cams_sub, "patch": patch,
              "m_full": a_full.shape[0], "m_low": rows.size})


def run_super_resolution(setup: SuperResolutionSetup, *,
                         method: str = "extdict", eps: float = 0.01,
                         dictionary_size: int | None = None, cluster=None,
                         lam: float = 1e-3, lr: float = 0.2,
                         max_iter: int = 300, tol: float = 1e-5,
                         sgd_batch: int = 64, seed=0) -> AppRunResult:
    """Super-resolve ``setup.y_low``; PSNR is scored on the full stack."""
    check_in(method, "method", ("extdict", "dense", "sgd"))
    a = setup.a_low
    y = setup.y_low
    preprocessing: dict = {}

    if method == "sgd":
        if cluster is None:
            from repro.baselines.sgd import sgd_lasso
            res = sgd_lasso(a, y, lam, batch=sgd_batch, lr=lr,
                            max_iter=max_iter, tol=tol, seed=seed)
            sim_t = sim_e = 0.0
        else:
            res = distributed_sgd_lasso(a, y, lam, cluster, batch=sgd_batch,
                                        lr=lr, max_iter=max_iter, tol=tol,
                                        seed=seed)
            sim_t, sim_e = res.spmd.simulated_time, res.spmd.simulated_energy
        x, iters, conv = res.x, res.iterations, res.converged
    else:
        if method == "extdict":
            size = dictionary_size or min(max(a.shape[0] // 2, 64),
                                          a.shape[1])
            transform, stats = exd_transform(a, size, eps, seed=seed)
            preprocessing = {"dictionary_size": transform.l,
                             "alpha": transform.alpha,
                             "omp_iterations": stats.omp_iterations}
            d, c = transform.dictionary.atoms, transform.coefficients

            def factory(comm):
                return LocalGramWorker(comm, d, c)
        else:
            def factory(comm):
                return LocalDenseGramWorker(comm, a)

        if cluster is None:
            from repro.solvers.lasso import lasso_gd
            if method == "extdict":
                from repro.core.gram import TransformedGramOperator
                op = TransformedGramOperator(transform)
                aty = transform.project_adjoint(y)
            else:
                from repro.baselines.dense import DenseGramOperator
                op = DenseGramOperator(a)
                aty = a.T @ y
            res = lasso_gd(op, aty, a.shape[1], lam, lr=lr,
                           max_iter=max_iter, tol=tol)
            sim_t = sim_e = 0.0
        else:
            res, spmd = distributed_lasso(cluster, factory, y, lam, lr=lr,
                                          max_iter=max_iter, tol=tol)
            sim_t, sim_e = spmd.simulated_time, spmd.simulated_energy
        x, iters, conv = res.x, res.iterations, res.converged

    reconstruction = setup.a_full @ x
    err = float(np.linalg.norm(setup.y_full - reconstruction) /
                max(np.linalg.norm(setup.y_full), 1e-30))
    return AppRunResult(
        method=method, x=x, reconstruction=reconstruction,
        psnr_db=psnr(setup.y_full, reconstruction),
        reconstruction_error=err, iterations=iters, converged=conv,
        simulated_time=sim_t, simulated_energy=sim_e,
        preprocessing=preprocessing)

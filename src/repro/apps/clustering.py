"""Sparse subspace clustering through ExD codes.

The paper's sparsity guarantee (Sec. V-B) comes from sparse subspace
clustering: a column's sparse code over a union-of-subspaces dictionary
selects atoms from *its own* subspace.  That makes the code matrix a
clustering signal for free: two columns are similar when they use the
same atoms.  This module closes the loop —

1. affinity ``W = |C|ᵀ|C|`` (columns weighted by shared atom usage);
2. spectral embedding of the normalised affinity via the same Power
   method used everywhere else in the library;
3. k-means on the embedding (Lloyd's algorithm, implemented here).

Clustering quality against ground-truth labels is scored with the
best-permutation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np

from repro.core.exd import exd_transform
from repro.core.transform import TransformedData
from repro.errors import ValidationError
from repro.linalg.power_iteration import top_eigenpairs
from repro.utils.rng import as_generator, derive_seed
from repro.utils.validation import check_matrix, check_positive_int


def code_affinity(transform: TransformedData) -> np.ndarray:
    """Symmetric non-negative affinity ``W = |C|ᵀ|C|`` with zero diagonal.

    Entries count (magnitude-weighted) shared dictionary atoms — the
    subspace-membership signal of Sec. V-B.
    """
    c = transform.coefficients
    abs_c = np.abs(c.to_dense())
    w = abs_c.T @ abs_c
    np.fill_diagonal(w, 0.0)
    return w


def spectral_embedding(affinity: np.ndarray, k: int, *,
                       seed=None) -> np.ndarray:
    """Top-k eigenvectors of the normalised affinity ``D^-½ W D^-½``.

    Rows are additionally ℓ2-normalised (the Ng–Jordan–Weiss recipe).
    """
    w = np.asarray(affinity, dtype=np.float64)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ValidationError(f"affinity must be square, got {w.shape}")
    if np.any(w < 0):
        raise ValidationError("affinity must be non-negative")
    n = w.shape[0]
    k = check_positive_int(k, "k")
    if k > n:
        raise ValidationError(f"k={k} exceeds n={n}")
    degrees = w.sum(axis=1)
    inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(np.maximum(degrees, 1e-30)),
                        0.0)
    normalized = w * inv_sqrt[:, None] * inv_sqrt[None, :]
    # Shift to PSD so power iteration is applicable: eigenvalues of the
    # normalised affinity lie in [-1, 1]; N(x) + x keeps the order.
    def op(x):
        return normalized @ x + x
    values, vectors, _ = top_eigenpairs(op, n, k, tol=1e-9, max_iter=500,
                                        seed=seed)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


def kmeans(points: np.ndarray, k: int, *, iters: int = 100,
           restarts: int = 5, seed=None) -> np.ndarray:
    """Lloyd's k-means with k-means++-style seeding and restarts."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValidationError(f"points must be 2-D, got {pts.ndim}-D")
    n = pts.shape[0]
    k = check_positive_int(k, "k")
    if k > n:
        raise ValidationError(f"k={k} exceeds number of points {n}")
    best_labels, best_inertia = None, np.inf
    for r in range(restarts):
        rng = as_generator(derive_seed(seed, r))
        centers = pts[_plus_plus_seed(pts, k, rng)]
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(iters):
            dists = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
            new_labels = dists.argmin(axis=1)
            if np.array_equal(new_labels, labels):
                labels = new_labels
                break
            labels = new_labels
            for j in range(k):
                members = pts[labels == j]
                if members.size:
                    centers[j] = members.mean(axis=0)
        inertia = float(((pts - centers[labels]) ** 2).sum())
        if inertia < best_inertia:
            best_inertia, best_labels = inertia, labels.copy()
    return best_labels


def _plus_plus_seed(pts: np.ndarray, k: int,
                    rng: np.random.Generator) -> np.ndarray:
    """k-means++ center selection."""
    n = pts.shape[0]
    chosen = [int(rng.integers(n))]
    for _ in range(1, k):
        d2 = np.min(((pts[:, None, :] - pts[chosen][None, :, :]) ** 2)
                    .sum(-1), axis=1)
        total = d2.sum()
        if total <= 0:
            chosen.append(int(rng.integers(n)))
            continue
        chosen.append(int(rng.choice(n, p=d2 / total)))
    return np.asarray(chosen, dtype=np.int64)


@dataclass
class ClusteringResult:
    """Labels plus the intermediate artefacts of one clustering run."""

    labels: np.ndarray
    transform: TransformedData
    embedding: np.ndarray


def subspace_cluster(a, n_clusters: int, *, eps: float = 0.05,
                     dictionary_size: int | None = None,
                     seed=None) -> ClusteringResult:
    """Cluster the columns of ``a`` by subspace membership via ExD codes."""
    a = check_matrix(a, "A")
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    size = dictionary_size or min(max(4 * n_clusters * 3, 32),
                                  a.shape[1])
    transform, _ = exd_transform(a, size, eps, seed=seed)
    affinity = code_affinity(transform)
    embedding = spectral_embedding(affinity, n_clusters,
                                   seed=derive_seed(seed, 1))
    labels = kmeans(embedding, n_clusters, seed=derive_seed(seed, 2))
    return ClusteringResult(labels=labels, transform=transform,
                            embedding=embedding)


def clustering_accuracy(predicted, truth) -> float:
    """Best-permutation agreement between two labelings (k ≤ 8)."""
    pred = np.asarray(predicted, dtype=np.int64)
    true = np.asarray(truth, dtype=np.int64)
    if pred.shape != true.shape:
        raise ValidationError(
            f"label shape mismatch: {pred.shape} vs {true.shape}")
    k = int(max(pred.max(initial=0), true.max(initial=0))) + 1
    if k > 8:
        raise ValidationError(
            f"permutation scoring supports k <= 8, got {k}")
    best = 0.0
    for perm in permutations(range(k)):
        mapped = np.asarray(perm)[pred]
        best = max(best, float(np.mean(mapped == true)))
    return best

"""PCA by the Power method (paper Sec. VIII-A, Figs. 10 and 12).

Finds the top-k eigenvalues of ``G = AᵀA`` either on the raw data or
through the ExD transform ``(DC)ᵀDC``.  Learning error is the paper's
normalised cumulative eigenvalue error against the exact spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.dense import DenseGramOperator, LocalDenseGramWorker
from repro.core.exd import exd_transform
from repro.core.gram import LocalGramWorker, TransformedGramOperator
from repro.errors import ValidationError
from repro.linalg.power_iteration import top_eigenpairs
from repro.solvers.power_method import distributed_power_method
from repro.utils.validation import check_in, check_matrix, check_positive_int


@dataclass
class PCARunResult:
    """Spectrum estimate plus costs for one PCA run."""

    method: str
    eigenvalues: np.ndarray
    iterations: list
    simulated_time: float = 0.0
    simulated_energy: float = 0.0
    preprocessing: dict = field(default_factory=dict)


def exact_gram_eigenvalues(a, k: int) -> np.ndarray:
    """Exact top-k eigenvalues of ``AᵀA`` (squared singular values)."""
    a = check_matrix(a, "A")
    k = check_positive_int(k, "k")
    if k > min(a.shape):
        raise ValidationError(
            f"k={k} exceeds rank bound {min(a.shape)}")
    s = np.linalg.svd(a, compute_uv=False)
    return (s[:k]) ** 2


def eigenvalue_error(estimated, exact) -> float:
    """Normalised cumulative error ``Σ|λ̂ᵢ − λᵢ| / Σλᵢ`` (Fig. 12)."""
    est = np.asarray(estimated, dtype=np.float64)
    exa = np.asarray(exact, dtype=np.float64)
    if est.shape != exa.shape:
        raise ValidationError(
            f"shape mismatch: {est.shape} vs {exa.shape}")
    denom = float(np.sum(np.abs(exa)))
    if denom == 0.0:
        return 0.0
    return float(np.sum(np.abs(est - exa))) / denom


def run_pca(a, k: int = 10, *, method: str = "extdict", eps: float = 0.1,
            dictionary_size: int | None = None, cluster=None,
            tol: float = 1e-7, max_iter: int = 200,
            seed=0, workers: int | None = None) -> PCARunResult:
    """Top-k PCA with the Power method.

    ``method`` is "extdict" (Gram updates on ``(DC)ᵀDC``) or "dense"
    (``AᵀA``).  With a cluster the distributed Power method runs on the
    emulator; otherwise the serial loop is used.  ``workers``
    parallelises the ExD preprocessing encode on the host.
    """
    check_in(method, "method", ("extdict", "dense"))
    a = check_matrix(a, "A")
    k = check_positive_int(k, "k")
    preprocessing: dict = {}

    if method == "extdict":
        size = dictionary_size or min(max(a.shape[0] // 2, 64), a.shape[1])
        transform, stats = exd_transform(a, size, eps, seed=seed,
                                         workers=workers)
        preprocessing = {"dictionary_size": transform.l,
                         "alpha": transform.alpha,
                         "omp_iterations": stats.omp_iterations}

    if cluster is None:
        if method == "extdict":
            op = TransformedGramOperator(transform)
        else:
            op = DenseGramOperator(a)
        values, _vectors, iters = top_eigenpairs(op, a.shape[1], k, tol=tol,
                                                 max_iter=max_iter, seed=seed)
        return PCARunResult(method=method, eigenvalues=values,
                            iterations=[iters], preprocessing=preprocessing)

    if method == "extdict":
        d, c = transform.dictionary.atoms, transform.coefficients

        def factory(comm):
            return LocalGramWorker(comm, d, c)
    else:
        def factory(comm):
            return LocalDenseGramWorker(comm, a)

    result = distributed_power_method(cluster, factory, k, tol=tol,
                                      max_iter=max_iter, seed=seed)
    return PCARunResult(method=method, eigenvalues=result.eigenvalues,
                        iterations=result.iterations,
                        simulated_time=result.spmd.simulated_time,
                        simulated_energy=result.spmd.simulated_energy,
                        preprocessing=preprocessing)

"""End-to-end applications from the paper's evaluation (Sec. VIII):
image denoising and image super-resolution (LASSO by gradient descent)
and PCA (Power method), each runnable with the ExtDict transform, the
dense baseline, or — for the regressions — the SGD baseline.
"""

from repro.apps.denoising import (
    DenoisingSetup,
    AppRunResult,
    make_denoising_setup,
    run_denoising,
)
from repro.apps.super_resolution import (
    SuperResolutionSetup,
    make_super_resolution_setup,
    run_super_resolution,
)
from repro.apps.pca import PCARunResult, run_pca, exact_gram_eigenvalues, eigenvalue_error
from repro.apps.convergence import TimeToTarget, regression_time_to_target
from repro.apps.clustering import (
    ClusteringResult,
    clustering_accuracy,
    code_affinity,
    kmeans,
    spectral_embedding,
    subspace_cluster,
)
from repro.apps.partitioning import cut_size, fiedler_vector, spectral_bisection
from repro.apps.patch_denoising import (
    PatchDenoiseResult,
    build_patch_dictionary,
    denoise_image_patches,
    estimate_noise_sigma,
)
from repro.apps.classification import (
    LSSVMModel,
    make_classification_problem,
    train_ls_svm,
    train_ls_svm_transformed,
)

__all__ = [
    "DenoisingSetup",
    "AppRunResult",
    "make_denoising_setup",
    "run_denoising",
    "SuperResolutionSetup",
    "make_super_resolution_setup",
    "run_super_resolution",
    "PCARunResult",
    "run_pca",
    "exact_gram_eigenvalues",
    "eigenvalue_error",
    "TimeToTarget",
    "regression_time_to_target",
    "ClusteringResult",
    "clustering_accuracy",
    "code_affinity",
    "kmeans",
    "spectral_embedding",
    "subspace_cluster",
    "cut_size",
    "fiedler_vector",
    "spectral_bisection",
    "PatchDenoiseResult",
    "build_patch_dictionary",
    "denoise_image_patches",
    "estimate_noise_sigma",
    "LSSVMModel",
    "make_classification_problem",
    "train_ls_svm",
    "train_ls_svm_transformed",
]
